//! Moldable-task extension: tasks that may run on several processors.
//!
//! The paper's conclusion names this the major extension: "consider
//! parallel tasks rather than only sequential ones … we are confident that
//! the algorithm presented in this paper (or its adaptation) would still
//! provide an improvement". This module provides the platform side of that
//! adaptation: an engine where the scheduler assigns each started task a
//! processor *count*, with its running time scaled by a speedup model.
//!
//! The engine is a virtual-clock [`GangBackend`] under the shared
//! [`crate::driver`] gang loop — the same loop that backs the sequential
//! simulator and the threaded runtime (`memtree_runtime::execute_moldable`),
//! so precedence, processor capacity, booking and stall detection are
//! enforced identically wherever a moldable policy runs.
//!
//! Memory is charged exactly as in the sequential-task model (the paper
//! notes a parallel run would need extra workspace; modelling that extra
//! is orthogonal and left to the policy via inflated `n_i` if desired).

use crate::driver::{drive_gang_with, DriveConfig, DriveError, GangBackend, Rescheduler};
use crate::error::SimError;
use crate::trace::MemSample;
use memtree_tree::{NodeId, TaskTree};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How running time scales with allotted processors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SpeedupModel {
    /// Perfect scaling: `t(q) = t / q`.
    Linear,
    /// Amdahl's law with the given serial fraction `f`:
    /// `t(q) = t · (f + (1 − f)/q)`.
    Amdahl {
        /// Serial fraction in `[0, 1]`.
        serial_fraction: f64,
    },
}

impl SpeedupModel {
    /// Running time of a task of sequential time `t` on `q` processors.
    pub fn time(&self, t: f64, q: usize) -> f64 {
        assert!(q >= 1, "a task needs at least one processor");
        match *self {
            SpeedupModel::Linear => t / q as f64,
            SpeedupModel::Amdahl { serial_fraction } => {
                assert!((0.0..=1.0).contains(&serial_fraction));
                t * (serial_fraction + (1.0 - serial_fraction) / q as f64)
            }
        }
    }
}

/// A scheduling policy for moldable tasks: like
/// [`crate::Scheduler`] but each started task carries an allotment.
pub trait MoldableScheduler {
    /// Policy name.
    fn name(&self) -> &str;
    /// React to completions; push `(task, processors)` pairs whose
    /// allotments must sum to at most `idle`.
    fn on_event(&mut self, finished: &[NodeId], idle: usize, to_start: &mut Vec<(NodeId, usize)>);
    /// Memory currently booked.
    fn booked(&self) -> u64;
    /// Optional hook: called once by the driver before the first event.
    fn on_begin(&mut self) {}
    /// Tasks ready to start but held back (memory, caps, idle workers) —
    /// surfaced to a [`Rescheduler`] through `LiveStats::ready_depth`.
    /// Policies without a ready set report 0.
    fn ready_depth(&self) -> usize {
        0
    }
}

/// Blanket impl so `&mut S` can be passed where a moldable scheduler is
/// expected.
impl<S: MoldableScheduler + ?Sized> MoldableScheduler for &mut S {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn on_event(&mut self, finished: &[NodeId], idle: usize, to_start: &mut Vec<(NodeId, usize)>) {
        (**self).on_event(finished, idle, to_start)
    }
    fn booked(&self) -> u64 {
        (**self).booked()
    }
    fn on_begin(&mut self) {
        (**self).on_begin()
    }
    fn ready_depth(&self) -> usize {
        (**self).ready_depth()
    }
}

impl<S: MoldableScheduler + ?Sized> MoldableScheduler for Box<S> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn on_event(&mut self, finished: &[NodeId], idle: usize, to_start: &mut Vec<(NodeId, usize)>) {
        (**self).on_event(finished, idle, to_start)
    }
    fn booked(&self) -> u64 {
        (**self).booked()
    }
    fn on_begin(&mut self) {
        (**self).on_begin()
    }
    fn ready_depth(&self) -> usize {
        (**self).ready_depth()
    }
}

/// Start/finish record of a moldable task.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MoldableRecord {
    /// Start time.
    pub start: f64,
    /// Completion time.
    pub finish: f64,
    /// Processors allotted. On a malleable run (a [`Rescheduler`] resized
    /// gangs mid-flight) this is the task's **peak** allotment; the full
    /// history lives in [`MoldableTrace::segments`].
    pub procs: u32,
}

/// One constant-allotment stretch of a task's execution. A task that was
/// never resized has exactly one segment spanning start to finish.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AllotmentSegment {
    /// The task.
    pub node: NodeId,
    /// Segment start time.
    pub start: f64,
    /// Segment end time (the next resize or the task's completion).
    pub end: f64,
    /// Processors held during the segment.
    pub procs: u32,
}

/// Outcome of a moldable simulation.
#[derive(Clone, Debug)]
pub struct MoldableTrace {
    /// Policy name.
    pub scheduler: String,
    /// Processor count simulated.
    pub processors: usize,
    /// Memory bound.
    pub memory: u64,
    /// Per-task records.
    pub records: Vec<MoldableRecord>,
    /// Total completion time.
    pub makespan: f64,
    /// Peak actual resident memory.
    pub peak_actual: u64,
    /// Peak booked memory.
    pub peak_booked: u64,
    /// Scheduler events processed (completion batches + the initial
    /// event).
    pub events: usize,
    /// Wall-clock seconds spent inside scheduler callbacks.
    pub scheduling_seconds: f64,
    /// Memory profile (always recorded; moldable runs are small).
    pub profile: Vec<MemSample>,
    /// Per-task allotment history, in execution order. Empty on a plain
    /// moldable run (no resizes possible); on a malleable run every task
    /// contributes one segment per constant-allotment stretch.
    pub segments: Vec<AllotmentSegment>,
    /// Peak sum of live allotments, from the driver's processor ledger.
    pub peak_busy: usize,
}

impl MoldableTrace {
    /// Per-task allotments in node-id order — the `q` each task actually
    /// got, for replaying the same gang decisions on another platform
    /// (e.g. the threaded runtime).
    pub fn allotments(&self) -> Vec<u32> {
        self.records.iter().map(|r| r.procs).collect()
    }

    /// The largest allotment any task received.
    pub fn max_allotment(&self) -> u32 {
        self.records.iter().map(|r| r.procs).max().unwrap_or(0)
    }

    /// Validates the trace: every task ran once, precedence held, the sum
    /// of allotments never exceeded `p`, and each task's duration matches
    /// the speedup model. Malleable traces (non-empty
    /// [`MoldableTrace::segments`]) are checked segment-wise through
    /// [`MoldableTrace::validate_malleable`] — the duration check becomes
    /// work conservation across resizes.
    pub fn validate(&self, tree: &TaskTree, model: SpeedupModel) -> Result<(), String> {
        if !self.segments.is_empty() {
            return self.validate_malleable(tree, model);
        }
        let n = tree.len();
        if self.records.len() != n {
            return Err("record count mismatch".into());
        }
        for i in tree.nodes() {
            let r = self.records[i.index()];
            if !r.start.is_finite() {
                return Err(format!("task {i:?} never ran"));
            }
            let expect = r.start + model.time(tree.time(i), r.procs as usize);
            if (r.finish - expect).abs() > 1e-9 * expect.abs().max(1.0) {
                return Err(format!("task {i:?} duration mismatch"));
            }
            for &c in tree.children(i) {
                if self.records[c.index()].finish > r.start + 1e-9 {
                    return Err(format!("precedence violated at {i:?}"));
                }
            }
        }
        // Allotment sweep.
        let mut events: Vec<(f64, i64)> = Vec::with_capacity(2 * n);
        for r in &self.records {
            events.push((r.start, r.procs as i64));
            events.push((r.finish, -(r.procs as i64)));
        }
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let mut used = 0i64;
        for (_, d) in events {
            used += d;
            if used > self.processors as i64 {
                return Err(format!("{used} processors used with {}", self.processors));
            }
        }
        Ok(())
    }

    /// Validates a malleable trace from its allotment segments: per task,
    /// segments tile `[start, finish]` without gaps and conserve the
    /// sequential work under the speedup model (`Σ len/t(1, q) = t_seq` —
    /// both models are linear in `t`, so `t(t_seq, q) = t_seq · t(1, q)`);
    /// precedence holds on the records; the segment-wise occupancy sweep
    /// never exceeds `p` and matches [`MoldableTrace::peak_busy`].
    pub fn validate_malleable(&self, tree: &TaskTree, model: SpeedupModel) -> Result<(), String> {
        let n = tree.len();
        if self.records.len() != n {
            return Err("record count mismatch".into());
        }
        let mut segs: Vec<Vec<&AllotmentSegment>> = vec![Vec::new(); n];
        for s in &self.segments {
            if s.procs == 0 {
                return Err(format!("zero-processor segment for {:?}", s.node));
            }
            if s.end < s.start - 1e-12 {
                return Err(format!("segment of {:?} ends before it starts", s.node));
            }
            segs[s.node.index()].push(s);
        }
        for i in tree.nodes() {
            let r = self.records[i.index()];
            if !r.start.is_finite() {
                return Err(format!("task {i:?} never ran"));
            }
            for &c in tree.children(i) {
                if self.records[c.index()].finish > r.start + 1e-9 {
                    return Err(format!("precedence violated at {i:?}"));
                }
            }
            let list = &segs[i.index()];
            if list.is_empty() {
                return Err(format!("task {i:?} has no allotment segment"));
            }
            let eps = 1e-9 * r.finish.abs().max(1.0);
            if (list[0].start - r.start).abs() > eps {
                return Err(format!("task {i:?} first segment misses its start"));
            }
            if (list[list.len() - 1].end - r.finish).abs() > eps {
                return Err(format!("task {i:?} last segment misses its finish"));
            }
            let mut consumed = 0.0;
            let mut peak_q = 0u32;
            for (k, s) in list.iter().enumerate() {
                if k + 1 < list.len() && (s.end - list[k + 1].start).abs() > eps {
                    return Err(format!("task {i:?} has a gap between segments"));
                }
                consumed += (s.end - s.start) / model.time(1.0, s.procs as usize);
                peak_q = peak_q.max(s.procs);
            }
            let t = tree.time(i);
            if (consumed - t).abs() > 1e-6 * t.max(1.0) {
                return Err(format!(
                    "task {i:?} work not conserved: did {consumed}, needs {t}"
                ));
            }
            if peak_q != r.procs {
                return Err(format!("task {i:?} record procs is not the segment peak"));
            }
        }
        let peak = self.occupancy_peak();
        if peak > self.processors {
            return Err(format!("{peak} processors used with {}", self.processors));
        }
        if self.peak_busy > self.processors {
            return Err(format!(
                "driver ledger peak {} exceeds {} processors",
                self.peak_busy, self.processors
            ));
        }
        if peak > self.peak_busy {
            return Err(format!(
                "segment occupancy peak {peak} exceeds the driver ledger {}",
                self.peak_busy
            ));
        }
        Ok(())
    }

    /// Peak concurrent allotment replayed from the trace: a sweep over
    /// [`MoldableTrace::segments`] when present, over the records
    /// otherwise. Segment ends sort before segment starts at equal times,
    /// so back-to-back hand-offs and same-instant resizes never count both
    /// allotments at once. On a valid trace this never exceeds
    /// [`MoldableTrace::peak_busy`], and equals it whenever no resize lands
    /// in the same instant the resized task's current segment opened — the
    /// ledger additionally records that pre-resize transient (e.g. a
    /// zero-duration task, or a gang resized at the event that started it),
    /// which a zero-width segment cannot represent.
    pub fn occupancy_peak(&self) -> usize {
        let mut events: Vec<(f64, i64)> = Vec::new();
        if self.segments.is_empty() {
            for r in &self.records {
                events.push((r.start, r.procs as i64));
                events.push((r.finish, -(r.procs as i64)));
            }
        } else {
            for s in &self.segments {
                events.push((s.start, s.procs as i64));
                events.push((s.end, -(s.procs as i64)));
            }
        }
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let mut used = 0i64;
        let mut peak = 0i64;
        for (_, d) in events {
            used += d;
            peak = peak.max(used);
        }
        peak.max(0) as usize
    }
}

/// Virtual-clock state of one running (possibly resized) task.
struct RunningTask {
    /// Sequential work left as of `segment_start`.
    remaining: f64,
    /// When the current constant-allotment segment began.
    segment_start: f64,
    /// Current allotment.
    procs: u32,
    /// Bumped on every resize; heap entries carry the generation they were
    /// pushed under, so stale completion times are skipped on pop.
    gen: u64,
}

/// The virtual-clock gang backend: gangs "run" on a completion-time heap
/// with the speedup model applied, and a batch is everything finishing at
/// the next instant. Resizes are exact: the model is linear in the
/// sequential time, so the work a segment consumed is `len / t(1, q)` and
/// the remainder reruns at the new allotment from the resize instant.
struct MoldableSimBackend<'t> {
    tree: &'t TaskTree,
    model: SpeedupModel,
    now: f64,
    heap: BinaryHeap<Reverse<(OrderedTime, NodeId, u64)>>,
    state: Vec<Option<RunningTask>>,
    records: Vec<MoldableRecord>,
    segments: Vec<AllotmentSegment>,
    profile: Vec<MemSample>,
}

impl<'t> MoldableSimBackend<'t> {
    fn new(tree: &'t TaskTree, model: SpeedupModel) -> Self {
        MoldableSimBackend {
            tree,
            model,
            now: 0.0,
            heap: BinaryHeap::new(),
            state: (0..tree.len()).map(|_| None).collect(),
            records: vec![
                MoldableRecord {
                    start: f64::NAN,
                    finish: f64::NAN,
                    procs: 0
                };
                tree.len()
            ],
            segments: Vec::new(),
            profile: Vec::new(),
        }
    }
}

impl GangBackend for MoldableSimBackend<'_> {
    fn launch(&mut self, i: NodeId, procs: usize, _epoch: u64) -> Result<(), DriveError> {
        let finish = self.now + self.model.time(self.tree.time(i), procs);
        self.records[i.index()] = MoldableRecord {
            start: self.now,
            finish,
            procs: procs as u32,
        };
        self.state[i.index()] = Some(RunningTask {
            remaining: self.tree.time(i),
            segment_start: self.now,
            procs: procs as u32,
            gen: 0,
        });
        self.heap.push(Reverse((OrderedTime(finish), i, 0)));
        Ok(())
    }

    fn resize(&mut self, i: NodeId, from: usize, to: usize, _epoch: u64) -> Result<(), DriveError> {
        let st = self.state[i.index()]
            .as_mut()
            .ok_or_else(|| DriveError::Backend(format!("resize of idle task {i:?}")))?;
        debug_assert_eq!(st.procs as usize, from, "driver and backend agree");
        let elapsed = self.now - st.segment_start;
        st.remaining = (st.remaining - elapsed / self.model.time(1.0, from)).max(0.0);
        self.segments.push(AllotmentSegment {
            node: i,
            start: st.segment_start,
            end: self.now,
            procs: st.procs,
        });
        st.segment_start = self.now;
        st.procs = to as u32;
        st.gen += 1;
        let finish = self.now + self.model.time(st.remaining, to);
        self.records[i.index()].finish = finish;
        self.records[i.index()].procs = self.records[i.index()].procs.max(to as u32);
        self.heap.push(Reverse((OrderedTime(finish), i, st.gen)));
        Ok(())
    }

    fn progress(&self, i: NodeId) -> Option<(u32, u32)> {
        const GRAIN: u32 = 1_000;
        let st = self.state[i.index()].as_ref()?;
        let total = self.tree.time(i);
        if total <= 0.0 {
            return Some((GRAIN, GRAIN));
        }
        let elapsed = self.now - st.segment_start;
        let remaining = (st.remaining - elapsed / self.model.time(1.0, st.procs as usize)).max(0.0);
        let done = ((1.0 - remaining / total).clamp(0.0, 1.0) * GRAIN as f64).round() as u32;
        Some((done, GRAIN))
    }

    fn observe(&mut self, actual: u64, booked: u64) {
        // Always recorded; moldable runs are small.
        self.profile.push(MemSample {
            time: self.now,
            actual,
            booked,
        });
    }

    fn await_batch(&mut self, _epoch: u64, batch: &mut Vec<NodeId>) -> Result<(), DriveError> {
        // The next genuine completion: skip heap entries whose generation
        // a resize has outdated.
        let t = loop {
            let Some(&Reverse((OrderedTime(t), i, gen))) = self.heap.peek() else {
                // Unreachable through `drive_gang` (it checks in-flight > 0).
                return Err(DriveError::Backend("no task is running".into()));
            };
            if self.state[i.index()].as_ref().is_some_and(|s| s.gen == gen) {
                break t;
            }
            self.heap.pop();
        };
        self.now = t;
        while let Some(&Reverse((OrderedTime(ft), i, gen))) = self.heap.peek() {
            if ft > t {
                break;
            }
            self.heap.pop();
            if self.state[i.index()].as_ref().is_none_or(|s| s.gen != gen) {
                continue; // stale generation
            }
            let st = self.state[i.index()].take().expect("checked live");
            self.segments.push(AllotmentSegment {
                node: i,
                start: st.segment_start,
                end: t,
                procs: st.procs,
            });
            self.records[i.index()].finish = t;
            batch.push(i);
        }
        Ok(())
    }
}

/// Runs a moldable simulation under the shared gang driver.
pub fn simulate_moldable<S: MoldableScheduler>(
    tree: &TaskTree,
    processors: usize,
    memory: u64,
    model: SpeedupModel,
    scheduler: S,
) -> Result<MoldableTrace, SimError> {
    simulate_moldable_with(tree, processors, memory, model, scheduler, None)
}

/// [`simulate_moldable`] with an optional [`Rescheduler`]: the policy's
/// malleable decisions run against the virtual clock, predicting the
/// makespan the threaded/async backends should approach. The returned
/// trace carries the full [`MoldableTrace::segments`] history when a
/// rescheduler was supplied (and validates segment-wise).
pub fn simulate_moldable_with<S: MoldableScheduler>(
    tree: &TaskTree,
    processors: usize,
    memory: u64,
    model: SpeedupModel,
    scheduler: S,
    rescheduler: Option<&mut dyn Rescheduler>,
) -> Result<MoldableTrace, SimError> {
    if processors == 0 {
        return Err(SimError::BadConfig("zero processors".into()));
    }
    let malleable = rescheduler.is_some();
    let name = scheduler.name().to_string();
    let mut backend = MoldableSimBackend::new(tree, model);
    let stats = drive_gang_with(
        tree,
        DriveConfig::new(processors, memory),
        scheduler,
        &mut backend,
        rescheduler,
    )
    .map_err(crate::engine::to_sim_error)?;
    Ok(MoldableTrace {
        scheduler: name,
        processors,
        memory,
        records: backend.records,
        makespan: backend.now,
        peak_actual: stats.peak_actual,
        peak_booked: stats.peak_booked,
        events: stats.events,
        scheduling_seconds: stats.scheduling_seconds,
        profile: backend.profile,
        segments: if malleable {
            backend.segments
        } else {
            Vec::new()
        },
        peak_busy: stats.peak_busy,
    })
}

#[derive(Clone, Copy, PartialEq)]
struct OrderedTime(f64);

impl Eq for OrderedTime {}

impl PartialOrd for OrderedTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("finite times")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_tree::{TaskSpec, TaskTree};

    #[test]
    fn speedup_models() {
        assert_eq!(SpeedupModel::Linear.time(8.0, 4), 2.0);
        let a = SpeedupModel::Amdahl {
            serial_fraction: 0.5,
        };
        assert_eq!(a.time(8.0, 1), 8.0);
        assert_eq!(a.time(8.0, 4), 8.0 * (0.5 + 0.125));
        // Monotone non-increasing in q.
        for q in 1..8 {
            assert!(a.time(8.0, q + 1) <= a.time(8.0, q));
        }
    }

    /// A trivial moldable policy: run the chain head on every processor.
    struct AllProcsChain<'a> {
        tree: &'a TaskTree,
        order: Vec<NodeId>,
        next: usize,
        bound: u64,
    }

    impl MoldableScheduler for AllProcsChain<'_> {
        fn name(&self) -> &str {
            "all-procs-chain"
        }
        fn on_event(&mut self, _: &[NodeId], idle: usize, to_start: &mut Vec<(NodeId, usize)>) {
            if idle > 0 && self.next < self.order.len() {
                let i = self.order[self.next];
                // Only start when children finished (chain: previous node).
                if self.next == 0 || self.order[self.next - 1] != i {
                    // chains: previous in order is the child
                }
                let _ = self.tree;
                to_start.push((i, idle));
                self.next += 1;
            }
        }
        fn booked(&self) -> u64 {
            self.bound
        }
    }

    #[test]
    fn linear_chain_gets_full_speedup() {
        let tree = memtree_gen::shapes::chain(10, TaskSpec::new(0, 1, 4.0));
        // Chain postorder: leaf (id 9) up to root (id 0).
        let order: Vec<NodeId> = memtree_tree::traverse::postorder(&tree);
        let total = tree.total_time();
        let trace = simulate_moldable(
            &tree,
            4,
            1_000,
            SpeedupModel::Linear,
            AllProcsChain {
                tree: &tree,
                order,
                next: 0,
                bound: 1_000,
            },
        )
        .unwrap();
        trace.validate(&tree, SpeedupModel::Linear).unwrap();
        assert!((trace.makespan - total / 4.0).abs() < 1e-9);
        assert!(trace.records.iter().all(|r| r.procs == 4));
    }

    #[test]
    fn over_allotment_rejected() {
        struct Greedy;
        impl MoldableScheduler for Greedy {
            fn name(&self) -> &str {
                "greedy"
            }
            fn on_event(&mut self, _: &[NodeId], idle: usize, out: &mut Vec<(NodeId, usize)>) {
                out.push((NodeId(0), idle + 1));
            }
            fn booked(&self) -> u64 {
                u64::MAX
            }
        }
        let tree = TaskTree::from_parents(&[None], &[TaskSpec::default()]).unwrap();
        assert!(matches!(
            simulate_moldable(&tree, 2, 10, SpeedupModel::Linear, Greedy),
            Err(SimError::TooManyStarts { .. })
        ));
    }
}
