//! Moldable-task extension: tasks that may run on several processors.
//!
//! The paper's conclusion names this the major extension: "consider
//! parallel tasks rather than only sequential ones … we are confident that
//! the algorithm presented in this paper (or its adaptation) would still
//! provide an improvement". This module provides the platform side of that
//! adaptation: an engine where the scheduler assigns each started task a
//! processor *count*, with its running time scaled by a speedup model.
//!
//! The engine is a virtual-clock [`GangBackend`] under the shared
//! [`crate::driver`] gang loop — the same loop that backs the sequential
//! simulator and the threaded runtime (`memtree_runtime::execute_moldable`),
//! so precedence, processor capacity, booking and stall detection are
//! enforced identically wherever a moldable policy runs.
//!
//! Memory is charged exactly as in the sequential-task model (the paper
//! notes a parallel run would need extra workspace; modelling that extra
//! is orthogonal and left to the policy via inflated `n_i` if desired).

use crate::driver::{drive_gang, DriveConfig, DriveError, GangBackend};
use crate::error::SimError;
use crate::trace::MemSample;
use memtree_tree::{NodeId, TaskTree};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How running time scales with allotted processors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SpeedupModel {
    /// Perfect scaling: `t(q) = t / q`.
    Linear,
    /// Amdahl's law with the given serial fraction `f`:
    /// `t(q) = t · (f + (1 − f)/q)`.
    Amdahl {
        /// Serial fraction in `[0, 1]`.
        serial_fraction: f64,
    },
}

impl SpeedupModel {
    /// Running time of a task of sequential time `t` on `q` processors.
    pub fn time(&self, t: f64, q: usize) -> f64 {
        assert!(q >= 1, "a task needs at least one processor");
        match *self {
            SpeedupModel::Linear => t / q as f64,
            SpeedupModel::Amdahl { serial_fraction } => {
                assert!((0.0..=1.0).contains(&serial_fraction));
                t * (serial_fraction + (1.0 - serial_fraction) / q as f64)
            }
        }
    }
}

/// A scheduling policy for moldable tasks: like
/// [`crate::Scheduler`] but each started task carries an allotment.
pub trait MoldableScheduler {
    /// Policy name.
    fn name(&self) -> &str;
    /// React to completions; push `(task, processors)` pairs whose
    /// allotments must sum to at most `idle`.
    fn on_event(&mut self, finished: &[NodeId], idle: usize, to_start: &mut Vec<(NodeId, usize)>);
    /// Memory currently booked.
    fn booked(&self) -> u64;
    /// Optional hook: called once by the driver before the first event.
    fn on_begin(&mut self) {}
}

/// Blanket impl so `&mut S` can be passed where a moldable scheduler is
/// expected.
impl<S: MoldableScheduler + ?Sized> MoldableScheduler for &mut S {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn on_event(&mut self, finished: &[NodeId], idle: usize, to_start: &mut Vec<(NodeId, usize)>) {
        (**self).on_event(finished, idle, to_start)
    }
    fn booked(&self) -> u64 {
        (**self).booked()
    }
    fn on_begin(&mut self) {
        (**self).on_begin()
    }
}

impl<S: MoldableScheduler + ?Sized> MoldableScheduler for Box<S> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn on_event(&mut self, finished: &[NodeId], idle: usize, to_start: &mut Vec<(NodeId, usize)>) {
        (**self).on_event(finished, idle, to_start)
    }
    fn booked(&self) -> u64 {
        (**self).booked()
    }
    fn on_begin(&mut self) {
        (**self).on_begin()
    }
}

/// Start/finish record of a moldable task.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MoldableRecord {
    /// Start time.
    pub start: f64,
    /// Completion time.
    pub finish: f64,
    /// Processors allotted.
    pub procs: u32,
}

/// Outcome of a moldable simulation.
#[derive(Clone, Debug)]
pub struct MoldableTrace {
    /// Policy name.
    pub scheduler: String,
    /// Processor count simulated.
    pub processors: usize,
    /// Memory bound.
    pub memory: u64,
    /// Per-task records.
    pub records: Vec<MoldableRecord>,
    /// Total completion time.
    pub makespan: f64,
    /// Peak actual resident memory.
    pub peak_actual: u64,
    /// Peak booked memory.
    pub peak_booked: u64,
    /// Scheduler events processed (completion batches + the initial
    /// event).
    pub events: usize,
    /// Wall-clock seconds spent inside scheduler callbacks.
    pub scheduling_seconds: f64,
    /// Memory profile (always recorded; moldable runs are small).
    pub profile: Vec<MemSample>,
}

impl MoldableTrace {
    /// Per-task allotments in node-id order — the `q` each task actually
    /// got, for replaying the same gang decisions on another platform
    /// (e.g. the threaded runtime).
    pub fn allotments(&self) -> Vec<u32> {
        self.records.iter().map(|r| r.procs).collect()
    }

    /// The largest allotment any task received.
    pub fn max_allotment(&self) -> u32 {
        self.records.iter().map(|r| r.procs).max().unwrap_or(0)
    }

    /// Validates the trace: every task ran once, precedence held, the sum
    /// of allotments never exceeded `p`, memory stayed under the bound.
    pub fn validate(&self, tree: &TaskTree, model: SpeedupModel) -> Result<(), String> {
        let n = tree.len();
        if self.records.len() != n {
            return Err("record count mismatch".into());
        }
        for i in tree.nodes() {
            let r = self.records[i.index()];
            if !r.start.is_finite() {
                return Err(format!("task {i:?} never ran"));
            }
            let expect = r.start + model.time(tree.time(i), r.procs as usize);
            if (r.finish - expect).abs() > 1e-9 * expect.abs().max(1.0) {
                return Err(format!("task {i:?} duration mismatch"));
            }
            for &c in tree.children(i) {
                if self.records[c.index()].finish > r.start + 1e-9 {
                    return Err(format!("precedence violated at {i:?}"));
                }
            }
        }
        // Allotment sweep.
        let mut events: Vec<(f64, i64)> = Vec::with_capacity(2 * n);
        for r in &self.records {
            events.push((r.start, r.procs as i64));
            events.push((r.finish, -(r.procs as i64)));
        }
        events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let mut used = 0i64;
        for (_, d) in events {
            used += d;
            if used > self.processors as i64 {
                return Err(format!("{used} processors used with {}", self.processors));
            }
        }
        Ok(())
    }
}

/// The virtual-clock gang backend: gangs "run" on a completion-time heap
/// with the speedup model applied, and a batch is everything finishing at
/// the next instant.
struct MoldableSimBackend<'t> {
    tree: &'t TaskTree,
    model: SpeedupModel,
    now: f64,
    running: BinaryHeap<Reverse<(OrderedTime, NodeId)>>,
    records: Vec<MoldableRecord>,
    profile: Vec<MemSample>,
}

impl<'t> MoldableSimBackend<'t> {
    fn new(tree: &'t TaskTree, model: SpeedupModel) -> Self {
        MoldableSimBackend {
            tree,
            model,
            now: 0.0,
            running: BinaryHeap::new(),
            records: vec![
                MoldableRecord {
                    start: f64::NAN,
                    finish: f64::NAN,
                    procs: 0
                };
                tree.len()
            ],
            profile: Vec::new(),
        }
    }
}

impl GangBackend for MoldableSimBackend<'_> {
    fn launch(&mut self, i: NodeId, procs: usize, _epoch: u32) -> Result<(), DriveError> {
        let finish = self.now + self.model.time(self.tree.time(i), procs);
        self.records[i.index()] = MoldableRecord {
            start: self.now,
            finish,
            procs: procs as u32,
        };
        self.running.push(Reverse((OrderedTime(finish), i)));
        Ok(())
    }

    fn observe(&mut self, actual: u64, booked: u64) {
        // Always recorded; moldable runs are small.
        self.profile.push(MemSample {
            time: self.now,
            actual,
            booked,
        });
    }

    fn await_batch(&mut self, _epoch: u32, batch: &mut Vec<NodeId>) -> Result<(), DriveError> {
        let Some(&Reverse((OrderedTime(t), _))) = self.running.peek() else {
            // Unreachable through `drive_gang` (it checks in-flight > 0).
            return Err(DriveError::Backend("no task is running".into()));
        };
        self.now = t;
        while let Some(&Reverse((OrderedTime(ft), i))) = self.running.peek() {
            if ft > t {
                break;
            }
            self.running.pop();
            batch.push(i);
        }
        Ok(())
    }
}

/// Runs a moldable simulation under the shared gang driver.
pub fn simulate_moldable<S: MoldableScheduler>(
    tree: &TaskTree,
    processors: usize,
    memory: u64,
    model: SpeedupModel,
    scheduler: S,
) -> Result<MoldableTrace, SimError> {
    if processors == 0 {
        return Err(SimError::BadConfig("zero processors".into()));
    }
    let name = scheduler.name().to_string();
    let mut backend = MoldableSimBackend::new(tree, model);
    let stats = drive_gang(
        tree,
        DriveConfig::new(processors, memory),
        scheduler,
        &mut backend,
    )
    .map_err(crate::engine::to_sim_error)?;
    Ok(MoldableTrace {
        scheduler: name,
        processors,
        memory,
        records: backend.records,
        makespan: backend.now,
        peak_actual: stats.peak_actual,
        peak_booked: stats.peak_booked,
        events: stats.events,
        scheduling_seconds: stats.scheduling_seconds,
        profile: backend.profile,
    })
}

#[derive(Clone, Copy, PartialEq)]
struct OrderedTime(f64);

impl Eq for OrderedTime {}

impl PartialOrd for OrderedTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("finite times")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memtree_tree::{TaskSpec, TaskTree};

    #[test]
    fn speedup_models() {
        assert_eq!(SpeedupModel::Linear.time(8.0, 4), 2.0);
        let a = SpeedupModel::Amdahl {
            serial_fraction: 0.5,
        };
        assert_eq!(a.time(8.0, 1), 8.0);
        assert_eq!(a.time(8.0, 4), 8.0 * (0.5 + 0.125));
        // Monotone non-increasing in q.
        for q in 1..8 {
            assert!(a.time(8.0, q + 1) <= a.time(8.0, q));
        }
    }

    /// A trivial moldable policy: run the chain head on every processor.
    struct AllProcsChain<'a> {
        tree: &'a TaskTree,
        order: Vec<NodeId>,
        next: usize,
        bound: u64,
    }

    impl MoldableScheduler for AllProcsChain<'_> {
        fn name(&self) -> &str {
            "all-procs-chain"
        }
        fn on_event(&mut self, _: &[NodeId], idle: usize, to_start: &mut Vec<(NodeId, usize)>) {
            if idle > 0 && self.next < self.order.len() {
                let i = self.order[self.next];
                // Only start when children finished (chain: previous node).
                if self.next == 0 || self.order[self.next - 1] != i {
                    // chains: previous in order is the child
                }
                let _ = self.tree;
                to_start.push((i, idle));
                self.next += 1;
            }
        }
        fn booked(&self) -> u64 {
            self.bound
        }
    }

    #[test]
    fn linear_chain_gets_full_speedup() {
        let tree = memtree_gen::shapes::chain(10, TaskSpec::new(0, 1, 4.0));
        // Chain postorder: leaf (id 9) up to root (id 0).
        let order: Vec<NodeId> = memtree_tree::traverse::postorder(&tree);
        let total = tree.total_time();
        let trace = simulate_moldable(
            &tree,
            4,
            1_000,
            SpeedupModel::Linear,
            AllProcsChain {
                tree: &tree,
                order,
                next: 0,
                bound: 1_000,
            },
        )
        .unwrap();
        trace.validate(&tree, SpeedupModel::Linear).unwrap();
        assert!((trace.makespan - total / 4.0).abs() < 1e-9);
        assert!(trace.records.iter().all(|r| r.procs == 4));
    }

    #[test]
    fn over_allotment_rejected() {
        struct Greedy;
        impl MoldableScheduler for Greedy {
            fn name(&self) -> &str {
                "greedy"
            }
            fn on_event(&mut self, _: &[NodeId], idle: usize, out: &mut Vec<(NodeId, usize)>) {
                out.push((NodeId(0), idle + 1));
            }
            fn booked(&self) -> u64 {
                u64::MAX
            }
        }
        let tree = TaskTree::from_parents(&[None], &[TaskSpec::default()]).unwrap();
        assert!(matches!(
            simulate_moldable(&tree, 2, 10, SpeedupModel::Linear, Greedy),
            Err(SimError::TooManyStarts { .. })
        ));
    }
}
