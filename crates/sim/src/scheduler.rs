//! The scheduler-callback protocol.

use memtree_tree::NodeId;

/// A dynamic scheduling policy driven by task-completion events.
///
/// The engine calls [`Scheduler::on_event`] once at `t = 0` (with an empty
/// `finished` batch) and once per completion instant thereafter. The
/// scheduler pushes the tasks it wants to start **now** into `to_start`
/// (at most `idle` of them); the engine starts them immediately at the
/// current simulated time.
///
/// Contract:
/// * a pushed task must have all children finished (be *available*) and
///   must not have been started before;
/// * `len(to_start) ≤ idle`;
/// * [`Scheduler::booked`] reports the memory currently reserved by the
///   policy — the engine checks `actual ≤ booked ≤ M` when
///   [`crate::SimConfig::enforce_booking`] is set.
///
/// Schedulers only learn processing times through completions, matching the
/// paper's assumption that `t_i` is unknown in advance.
pub trait Scheduler {
    /// Human-readable policy name (used in traces and CSV output).
    fn name(&self) -> &str;

    /// React to a batch of completions (empty at `t = 0`).
    ///
    /// `finished` is sorted by node id. `idle` is the number of free
    /// processors *after* the completions.
    fn on_event(&mut self, finished: &[NodeId], idle: usize, to_start: &mut Vec<NodeId>);

    /// Memory currently booked by the policy.
    fn booked(&self) -> u64;

    /// Optional hook: called once by the engine before the first event.
    fn on_begin(&mut self) {}
}

/// Blanket impl so `&mut S` can be passed where a scheduler is expected.
impl<S: Scheduler + ?Sized> Scheduler for &mut S {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn on_event(&mut self, finished: &[NodeId], idle: usize, to_start: &mut Vec<NodeId>) {
        (**self).on_event(finished, idle, to_start)
    }
    fn booked(&self) -> u64 {
        (**self).booked()
    }
    fn on_begin(&mut self) {
        (**self).on_begin()
    }
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn on_event(&mut self, finished: &[NodeId], idle: usize, to_start: &mut Vec<NodeId>) {
        (**self).on_event(finished, idle, to_start)
    }
    fn booked(&self) -> u64 {
        (**self).booked()
    }
    fn on_begin(&mut self) {
        (**self).on_begin()
    }
}
