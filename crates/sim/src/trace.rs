//! Execution traces produced by the engine.

use memtree_tree::NodeId;

/// Start/finish record of one task.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskRecord {
    /// Simulated start time.
    pub start: f64,
    /// Simulated completion time.
    pub finish: f64,
    /// Processor that ran the task.
    pub processor: u32,
    /// Engine event index at which the task started. Zero-duration tasks
    /// start and finish at the same simulated time; epochs disambiguate
    /// the causal order for trace validation.
    pub start_epoch: u64,
    /// Engine event index at which the completion took effect.
    pub finish_epoch: u64,
}

/// One sampled point of the memory profile (taken at every event).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemSample {
    /// Simulated time of the sample.
    pub time: f64,
    /// Actual resident memory.
    pub actual: u64,
    /// Memory booked by the scheduler.
    pub booked: u64,
}

/// The full outcome of a simulation.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Scheduler name.
    pub scheduler: String,
    /// Number of processors simulated.
    pub processors: usize,
    /// Memory bound.
    pub memory: u64,
    /// Per-task records, indexed by node id.
    pub records: Vec<TaskRecord>,
    /// Total completion time.
    pub makespan: f64,
    /// Peak of the actual resident memory.
    pub peak_actual: u64,
    /// Peak of the scheduler's booked memory.
    pub peak_booked: u64,
    /// Wall-clock seconds spent inside scheduler callbacks — the paper's
    /// "scheduling time".
    pub scheduling_seconds: f64,
    /// Number of events processed (task completions + the initial event).
    pub events: usize,
    /// Memory profile sampled at each event (empty unless requested).
    pub profile: Vec<MemSample>,
}

impl Trace {
    /// The record of node `i`.
    #[inline]
    pub fn record(&self, i: NodeId) -> TaskRecord {
        self.records[i.index()]
    }

    /// Fraction of the memory bound actually used at peak
    /// (`peak_actual / M`) — the quantity of Figures 4 and 12.
    pub fn memory_fraction_used(&self) -> f64 {
        if self.memory == 0 {
            return 0.0;
        }
        self.peak_actual as f64 / self.memory as f64
    }

    /// Fraction of the memory bound booked at peak.
    pub fn booked_fraction(&self) -> f64 {
        if self.memory == 0 {
            return 0.0;
        }
        self.peak_booked as f64 / self.memory as f64
    }

    /// Average scheduling time per node, in seconds (Figure 6's y-axis).
    pub fn scheduling_seconds_per_node(&self) -> f64 {
        self.scheduling_seconds / self.records.len() as f64
    }

    /// Maximum number of tasks running simultaneously, recomputed from the
    /// records by a sweep.
    pub fn max_concurrency(&self) -> usize {
        let mut points: Vec<(f64, i32)> = Vec::with_capacity(self.records.len() * 2);
        for r in &self.records {
            points.push((r.start, 1));
            points.push((r.finish, -1));
        }
        // Process finishes before starts at equal times: a processor freed
        // at t can be reused at t.
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let mut cur = 0i32;
        let mut max = 0i32;
        for (_, d) in points {
            cur += d;
            max = max.max(cur);
        }
        max as usize
    }

    /// Serialises the per-task records as CSV
    /// (`task,start,finish,processor`), ordered by start time — ready for
    /// Gantt plotting.
    pub fn records_to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut rows: Vec<(usize, &TaskRecord)> = self.records.iter().enumerate().collect();
        rows.sort_by(|a, b| {
            a.1.start
                .partial_cmp(&b.1.start)
                .unwrap()
                .then(a.0.cmp(&b.0))
        });
        let mut out = String::from("task,start,finish,processor\n");
        for (id, r) in rows {
            let _ = writeln!(out, "{id},{},{},{}", r.start, r.finish, r.processor);
        }
        out
    }

    /// Serialises the memory profile as CSV (`time,actual,booked`);
    /// empty unless the simulation recorded a profile
    /// ([`crate::SimConfig::with_profile`]).
    pub fn profile_to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("time,actual,booked\n");
        for s in &self.profile {
            let _ = writeln!(out, "{},{},{}", s.time, s.actual, s.booked);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(start: f64, finish: f64, processor: u32) -> TaskRecord {
        TaskRecord {
            start,
            finish,
            processor,
            start_epoch: 0,
            finish_epoch: 1,
        }
    }

    fn trace(records: Vec<TaskRecord>) -> Trace {
        Trace {
            scheduler: "test".into(),
            processors: 2,
            memory: 100,
            makespan: records.iter().map(|r| r.finish).fold(0.0, f64::max),
            records,
            peak_actual: 60,
            peak_booked: 80,
            scheduling_seconds: 1e-3,
            events: 3,
            profile: Vec::new(),
        }
    }

    #[test]
    fn fractions() {
        let t = trace(vec![rec(0.0, 1.0, 0)]);
        assert_eq!(t.memory_fraction_used(), 0.6);
        assert_eq!(t.booked_fraction(), 0.8);
        assert_eq!(t.scheduling_seconds_per_node(), 1e-3);
    }

    #[test]
    fn concurrency_sweep() {
        let t = trace(vec![rec(0.0, 2.0, 0), rec(1.0, 3.0, 1), rec(2.0, 4.0, 0)]);
        assert_eq!(t.max_concurrency(), 2);
    }

    #[test]
    fn back_to_back_tasks_do_not_overlap() {
        let t = trace(vec![rec(0.0, 1.0, 0), rec(1.0, 2.0, 0)]);
        assert_eq!(t.max_concurrency(), 1);
    }
}
