//! Independent re-validation of traces.
//!
//! [`validate_trace`] recomputes everything from the per-task records
//! without trusting the engine's incremental bookkeeping: it is the final
//! arbiter used by integration tests and the experiment harness.

use crate::trace::Trace;
use memtree_tree::memory::LiveSet;
use memtree_tree::{NodeId, TaskTree};

/// Checks `trace` against `tree` and the platform limits it claims.
///
/// Verifies:
/// 1. every task ran exactly once, with `finish = start + t_i`;
/// 2. precedence: every child finished no later than its parent started;
/// 3. at most `processors` tasks overlap, and no two tasks overlap on the
///    same processor;
/// 4. replayed actual memory stays within `memory` at all times;
/// 5. the recorded makespan is the latest finish time.
pub fn validate_trace(tree: &TaskTree, trace: &Trace) -> Result<(), String> {
    let n = tree.len();
    if trace.records.len() != n {
        return Err(format!("{} records for {n} tasks", trace.records.len()));
    }

    // (1) Sane records.
    for i in tree.nodes() {
        let r = trace.record(i);
        if !r.start.is_finite() || !r.finish.is_finite() {
            return Err(format!("task {i:?} never ran"));
        }
        let expected = r.start + tree.time(i);
        if (r.finish - expected).abs() > 1e-9 * expected.abs().max(1.0) {
            return Err(format!(
                "task {i:?} duration mismatch: {} -> {} with t = {}",
                r.start,
                r.finish,
                tree.time(i)
            ));
        }
        if (r.processor as usize) >= trace.processors {
            return Err(format!("task {i:?} ran on ghost processor {}", r.processor));
        }
    }

    // (2) Precedence.
    for i in tree.nodes() {
        let r = trace.record(i);
        for &c in tree.children(i) {
            let rc = trace.record(c);
            if rc.finish > r.start + 1e-9 {
                return Err(format!(
                    "child {c:?} finishes at {} after parent {i:?} starts at {}",
                    rc.finish, r.start
                ));
            }
        }
    }

    // (3) Concurrency and per-processor exclusivity; (4) memory replay.
    // Sweep events in causal order: by time, then by engine epoch, with
    // completions before starts inside one epoch. Epochs disambiguate
    // zero-duration tasks that start and finish at the same instant.
    #[derive(Clone, Copy)]
    enum Ev {
        Finish(NodeId),
        Start(NodeId),
    }
    let mut events: Vec<(f64, u32, u8, Ev)> = Vec::with_capacity(2 * n);
    for i in tree.nodes() {
        let r = trace.record(i);
        if r.finish_epoch <= r.start_epoch {
            return Err(format!("task {i:?} finish epoch not after its start epoch"));
        }
        events.push((r.finish, r.finish_epoch, 0, Ev::Finish(i)));
        events.push((r.start, r.start_epoch, 1, Ev::Start(i)));
    }
    events.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap()
            .then(a.1.cmp(&b.1))
            .then(a.2.cmp(&b.2))
            .then_with(|| {
                let id = |e: &Ev| match e {
                    Ev::Finish(i) | Ev::Start(i) => i.index(),
                };
                id(&a.3).cmp(&id(&b.3))
            })
    });

    let mut live = LiveSet::new(tree);
    let mut busy: Vec<Option<NodeId>> = vec![None; trace.processors];
    let mut running = 0usize;
    for (_, _, _, ev) in events {
        match ev {
            Ev::Start(i) => {
                let p = trace.record(i).processor as usize;
                if let Some(other) = busy[p] {
                    return Err(format!(
                        "tasks {other:?} and {i:?} overlap on processor {p}"
                    ));
                }
                busy[p] = Some(i);
                running += 1;
                if running > trace.processors {
                    return Err(format!(
                        "{running} tasks running with {} processors",
                        trace.processors
                    ));
                }
                live.start(i);
                if live.current() > trace.memory {
                    return Err(format!(
                        "resident memory {} exceeds bound {} when {i:?} starts",
                        live.current(),
                        trace.memory
                    ));
                }
            }
            Ev::Finish(i) => {
                let p = trace.record(i).processor as usize;
                if busy[p] != Some(i) {
                    return Err(format!(
                        "task {i:?} finished on processor {p} it did not hold"
                    ));
                }
                busy[p] = None;
                running -= 1;
                live.finish(i);
            }
        }
    }

    // (5) Makespan.
    let last = trace
        .records
        .iter()
        .map(|r| r.finish)
        .fold(f64::NEG_INFINITY, f64::max);
    if (last - trace.makespan).abs() > 1e-9 * last.abs().max(1.0) {
        return Err(format!(
            "makespan {} but last finish {}",
            trace.makespan, last
        ));
    }

    // Peak cross-check: replayed peak must equal the engine's.
    if live.peak() != trace.peak_actual {
        return Err(format!(
            "replayed peak {} differs from recorded {}",
            live.peak(),
            trace.peak_actual
        ));
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use crate::scheduler::Scheduler;
    use memtree_tree::{TaskSpec, TaskTree};

    struct Serial<'a> {
        order: Vec<NodeId>,
        next: usize,
        bound: u64,
        _tree: &'a TaskTree,
    }

    impl Scheduler for Serial<'_> {
        fn name(&self) -> &str {
            "serial-test"
        }
        fn on_event(&mut self, _: &[NodeId], idle: usize, to_start: &mut Vec<NodeId>) {
            if idle > 0 && self.next < self.order.len() {
                to_start.push(self.order[self.next]);
                self.next += 1;
            }
        }
        fn booked(&self) -> u64 {
            self.bound
        }
    }

    #[test]
    fn serial_trace_validates() {
        let t = TaskTree::from_parents(
            &[None, Some(0), Some(0), Some(1)],
            &[
                TaskSpec::new(0, 1, 1.0),
                TaskSpec::new(1, 2, 2.0),
                TaskSpec::new(2, 3, 3.0),
                TaskSpec::new(3, 4, 4.0),
            ],
        )
        .unwrap();
        let order = memtree_tree::traverse::postorder(&t);
        let trace = simulate(
            &t,
            SimConfig::new(1, 1000),
            Serial {
                order,
                next: 0,
                bound: 1000,
                _tree: &t,
            },
        )
        .unwrap();
        validate_trace(&t, &trace).unwrap();
        assert_eq!(trace.makespan, 10.0);
    }

    #[test]
    fn tampered_trace_rejected() {
        let t = TaskTree::from_parents(
            &[None, Some(0)],
            &[TaskSpec::new(0, 1, 1.0), TaskSpec::new(0, 1, 1.0)],
        )
        .unwrap();
        let order = memtree_tree::traverse::postorder(&t);
        let mut trace = simulate(
            &t,
            SimConfig::new(1, 100),
            Serial {
                order,
                next: 0,
                bound: 100,
                _tree: &t,
            },
        )
        .unwrap();
        validate_trace(&t, &trace).unwrap();

        // Break precedence: make the root start before the leaf ends.
        trace.records[0].start = 0.0;
        trace.records[0].finish = 1.0;
        assert!(validate_trace(&t, &trace).is_err());
    }

    #[test]
    fn memory_bound_violation_rejected() {
        let t = TaskTree::from_parents(
            &[None, Some(0)],
            &[TaskSpec::new(0, 50, 1.0), TaskSpec::new(0, 60, 1.0)],
        )
        .unwrap();
        let order = memtree_tree::traverse::postorder(&t);
        let mut trace = simulate(
            &t,
            SimConfig::new(1, 1000),
            Serial {
                order,
                next: 0,
                bound: 1000,
                _tree: &t,
            },
        )
        .unwrap();
        // Claim a tighter bound than the replayed peak (60 + 50 + 50 = 110
        // during the root).
        trace.memory = 100;
        assert!(validate_trace(&t, &trace)
            .unwrap_err()
            .contains("exceeds bound"));
    }
}
