//! Independent re-validation of traces.
//!
//! [`validate_trace`] recomputes everything from the per-task records
//! without trusting the engine's incremental bookkeeping: it is the final
//! arbiter used by integration tests and the experiment harness.

use crate::trace::Trace;
use memtree_tree::memory::LiveSet;
use memtree_tree::{NodeId, TaskTree};

/// Checks `trace` against `tree` and the platform limits it claims.
///
/// Verifies:
/// 1. every task ran exactly once, with `finish = start + t_i`;
/// 2. precedence: every child finished no later than its parent started;
/// 3. at most `processors` tasks overlap, and no two tasks overlap on the
///    same processor;
/// 4. replayed actual memory stays within `memory` at all times;
/// 5. the recorded makespan is the latest finish time.
pub fn validate_trace(tree: &TaskTree, trace: &Trace) -> Result<(), String> {
    let n = tree.len();
    if trace.records.len() != n {
        return Err(format!("{} records for {n} tasks", trace.records.len()));
    }

    // (1) Sane records.
    for i in tree.nodes() {
        let r = trace.record(i);
        if !r.start.is_finite() || !r.finish.is_finite() {
            return Err(format!("task {i:?} never ran"));
        }
        let expected = r.start + tree.time(i);
        if (r.finish - expected).abs() > 1e-9 * expected.abs().max(1.0) {
            return Err(format!(
                "task {i:?} duration mismatch: {} -> {} with t = {}",
                r.start,
                r.finish,
                tree.time(i)
            ));
        }
        if (r.processor as usize) >= trace.processors {
            return Err(format!("task {i:?} ran on ghost processor {}", r.processor));
        }
    }

    // (2) Precedence.
    for i in tree.nodes() {
        let r = trace.record(i);
        for &c in tree.children(i) {
            let rc = trace.record(c);
            if rc.finish > r.start + 1e-9 {
                return Err(format!(
                    "child {c:?} finishes at {} after parent {i:?} starts at {}",
                    rc.finish, r.start
                ));
            }
        }
    }

    // (3) Concurrency and per-processor exclusivity; (4) memory replay.
    // Sweep events in causal order: by time, then by engine epoch, with
    // completions before starts inside one epoch. Epochs disambiguate
    // zero-duration tasks that start and finish at the same instant.
    #[derive(Clone, Copy)]
    enum Ev {
        Finish(NodeId),
        Start(NodeId),
    }
    let mut events: Vec<(f64, u64, u8, Ev)> = Vec::with_capacity(2 * n);
    for i in tree.nodes() {
        let r = trace.record(i);
        if r.finish_epoch <= r.start_epoch {
            return Err(format!("task {i:?} finish epoch not after its start epoch"));
        }
        events.push((r.finish, r.finish_epoch, 0, Ev::Finish(i)));
        events.push((r.start, r.start_epoch, 1, Ev::Start(i)));
    }
    events.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap()
            .then(a.1.cmp(&b.1))
            .then(a.2.cmp(&b.2))
            .then_with(|| {
                let id = |e: &Ev| match e {
                    Ev::Finish(i) | Ev::Start(i) => i.index(),
                };
                id(&a.3).cmp(&id(&b.3))
            })
    });

    let mut live = LiveSet::new(tree);
    let mut busy: Vec<Option<NodeId>> = vec![None; trace.processors];
    let mut running = 0usize;
    for (_, _, _, ev) in events {
        match ev {
            Ev::Start(i) => {
                let p = trace.record(i).processor as usize;
                if let Some(other) = busy[p] {
                    return Err(format!(
                        "tasks {other:?} and {i:?} overlap on processor {p}"
                    ));
                }
                busy[p] = Some(i);
                running += 1;
                if running > trace.processors {
                    return Err(format!(
                        "{running} tasks running with {} processors",
                        trace.processors
                    ));
                }
                live.start(i);
                if live.current() > trace.memory {
                    return Err(format!(
                        "resident memory {} exceeds bound {} when {i:?} starts",
                        live.current(),
                        trace.memory
                    ));
                }
            }
            Ev::Finish(i) => {
                let p = trace.record(i).processor as usize;
                if busy[p] != Some(i) {
                    return Err(format!(
                        "task {i:?} finished on processor {p} it did not hold"
                    ));
                }
                busy[p] = None;
                running -= 1;
                live.finish(i);
            }
        }
    }

    // (5) Makespan.
    let last = trace
        .records
        .iter()
        .map(|r| r.finish)
        .fold(f64::NEG_INFINITY, f64::max);
    if (last - trace.makespan).abs() > 1e-9 * last.abs().max(1.0) {
        return Err(format!(
            "makespan {} but last finish {}",
            trace.makespan, last
        ));
    }

    // Peak cross-check: replayed peak must equal the engine's.
    if live.peak() != trace.peak_actual {
        return Err(format!(
            "replayed peak {} differs from recorded {}",
            live.peak(),
            trace.peak_actual
        ));
    }

    Ok(())
}

/// The assignment value meaning "this node stays in the residual tree"
/// (mirrors `memtree_tree::partition::RESIDUAL`; redeclared here so the
/// validator depends only on the raw plan, not the partition types).
pub const RESIDUAL_SHARD: u32 = u32::MAX;

/// Shard-aware validation: checks that `assignment` (one entry per tree
/// node: a shard index below `shard_count`, or [`RESIDUAL_SHARD`]) is an
/// executable shard plan for `tree`.
///
/// Verifies:
/// 1. one assignment per node, every shard index in range;
/// 2. the tree root is residual (the merge tree always finishes the run);
/// 3. shards are **downward closed**: a shard node's children are in the
///    same shard — so a shard is executable without cross-shard waits;
/// 4. each shard is a single connected subtree: exactly one shard root,
///    and that root's parent is residual (the merge frontier);
/// 5. no shard is empty.
///
/// Sharded platforms run this before launching workers: a malformed plan
/// is a partitioner bug that must abort the run, not deadlock it.
pub fn validate_shard_plan(
    tree: &TaskTree,
    assignment: &[u32],
    shard_count: usize,
) -> Result<(), String> {
    if assignment.len() != tree.len() {
        return Err(format!(
            "{} assignments for {} nodes",
            assignment.len(),
            tree.len()
        ));
    }
    if assignment[tree.root().index()] != RESIDUAL_SHARD {
        return Err("the tree root must stay in the residual tree".into());
    }
    let mut shard_root: Vec<Option<NodeId>> = vec![None; shard_count];
    let mut shard_nodes = vec![0usize; shard_count];
    for i in tree.nodes() {
        let s = assignment[i.index()];
        if s == RESIDUAL_SHARD {
            continue;
        }
        if (s as usize) >= shard_count {
            return Err(format!("node {i:?} assigned to ghost shard {s}"));
        }
        shard_nodes[s as usize] += 1;
        let p = tree.parent(i).expect("non-residual nodes are not the root");
        let ps = assignment[p.index()];
        if ps == s {
            continue;
        }
        // A shard node whose parent is elsewhere is a shard root; its
        // parent must sit on the residual merge frontier, and each shard
        // has exactly one such root (connectivity).
        if ps != RESIDUAL_SHARD {
            return Err(format!(
                "shard {s} root {i:?} hangs under shard {ps}, not the residual tree"
            ));
        }
        if let Some(other) = shard_root[s as usize] {
            return Err(format!(
                "shard {s} is disconnected: roots {other:?} and {i:?}"
            ));
        }
        shard_root[s as usize] = Some(i);
    }
    for (s, (&root, &nodes)) in shard_root.iter().zip(&shard_nodes).enumerate() {
        if nodes == 0 {
            return Err(format!("shard {s} is empty"));
        }
        if root.is_none() {
            return Err(format!("shard {s} has no root under the residual tree"));
        }
    }
    // Downward closure, checked from the child side above, leaves one
    // gap: a residual node below a shard node. Sweep parents once more.
    for i in tree.nodes() {
        let s = assignment[i.index()];
        for &c in tree.children(i) {
            let cs = assignment[c.index()];
            if s != RESIDUAL_SHARD && cs != s {
                return Err(format!(
                    "shard {s} node {i:?} has child {c:?} outside the shard"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use crate::scheduler::Scheduler;
    use memtree_tree::{TaskSpec, TaskTree};

    struct Serial<'a> {
        order: Vec<NodeId>,
        next: usize,
        bound: u64,
        _tree: &'a TaskTree,
    }

    impl Scheduler for Serial<'_> {
        fn name(&self) -> &str {
            "serial-test"
        }
        fn on_event(&mut self, _: &[NodeId], idle: usize, to_start: &mut Vec<NodeId>) {
            if idle > 0 && self.next < self.order.len() {
                to_start.push(self.order[self.next]);
                self.next += 1;
            }
        }
        fn booked(&self) -> u64 {
            self.bound
        }
    }

    #[test]
    fn serial_trace_validates() {
        let t = TaskTree::from_parents(
            &[None, Some(0), Some(0), Some(1)],
            &[
                TaskSpec::new(0, 1, 1.0),
                TaskSpec::new(1, 2, 2.0),
                TaskSpec::new(2, 3, 3.0),
                TaskSpec::new(3, 4, 4.0),
            ],
        )
        .unwrap();
        let order = memtree_tree::traverse::postorder(&t);
        let trace = simulate(
            &t,
            SimConfig::new(1, 1000),
            Serial {
                order,
                next: 0,
                bound: 1000,
                _tree: &t,
            },
        )
        .unwrap();
        validate_trace(&t, &trace).unwrap();
        assert_eq!(trace.makespan, 10.0);
    }

    #[test]
    fn tampered_trace_rejected() {
        let t = TaskTree::from_parents(
            &[None, Some(0)],
            &[TaskSpec::new(0, 1, 1.0), TaskSpec::new(0, 1, 1.0)],
        )
        .unwrap();
        let order = memtree_tree::traverse::postorder(&t);
        let mut trace = simulate(
            &t,
            SimConfig::new(1, 100),
            Serial {
                order,
                next: 0,
                bound: 100,
                _tree: &t,
            },
        )
        .unwrap();
        validate_trace(&t, &trace).unwrap();

        // Break precedence: make the root start before the leaf ends.
        trace.records[0].start = 0.0;
        trace.records[0].finish = 1.0;
        assert!(validate_trace(&t, &trace).is_err());
    }

    #[test]
    fn memory_bound_violation_rejected() {
        let t = TaskTree::from_parents(
            &[None, Some(0)],
            &[TaskSpec::new(0, 50, 1.0), TaskSpec::new(0, 60, 1.0)],
        )
        .unwrap();
        let order = memtree_tree::traverse::postorder(&t);
        let mut trace = simulate(
            &t,
            SimConfig::new(1, 1000),
            Serial {
                order,
                next: 0,
                bound: 1000,
                _tree: &t,
            },
        )
        .unwrap();
        // Claim a tighter bound than the replayed peak (60 + 50 + 50 = 110
        // during the root).
        trace.memory = 100;
        assert!(validate_trace(&t, &trace)
            .unwrap_err()
            .contains("exceeds bound"));
    }

    /// Root 0; children 1, 2; 1 has children 3, 4.
    fn plan_tree() -> TaskTree {
        TaskTree::from_parents(
            &[None, Some(0), Some(0), Some(1), Some(1)],
            &[TaskSpec::new(1, 1, 1.0); 5],
        )
        .unwrap()
    }

    #[test]
    fn valid_shard_plans_pass() {
        let t = plan_tree();
        const R: u32 = RESIDUAL_SHARD;
        // Subtree of 1 is shard 0, node 2 is shard 1.
        validate_shard_plan(&t, &[R, 0, 1, 0, 0], 2).unwrap();
        // Everything residual is a valid zero-shard plan.
        validate_shard_plan(&t, &[R; 5], 0).unwrap();
    }

    #[test]
    fn malformed_shard_plans_rejected() {
        let t = plan_tree();
        const R: u32 = RESIDUAL_SHARD;
        // Root inside a shard.
        assert!(validate_shard_plan(&t, &[0, 0, 0, 0, 0], 1)
            .unwrap_err()
            .contains("root"));
        // Not downward closed: node 1 sharded, child 3 residual.
        assert!(validate_shard_plan(&t, &[R, 0, R, R, 0], 1)
            .unwrap_err()
            .contains("outside the shard"));
        // Disconnected shard: nodes 3 and 4 share a shard but their
        // parent 1 is residual.
        assert!(validate_shard_plan(&t, &[R, R, R, 0, 0], 1)
            .unwrap_err()
            .contains("disconnected"));
        // Empty shard.
        assert!(validate_shard_plan(&t, &[R, 0, R, 0, 0], 2)
            .unwrap_err()
            .contains("empty"));
        // Ghost shard index.
        assert!(validate_shard_plan(&t, &[R, 7, R, 7, 7], 1)
            .unwrap_err()
            .contains("ghost"));
        // Wrong length.
        assert!(validate_shard_plan(&t, &[R; 3], 0)
            .unwrap_err()
            .contains("assignments"));
    }
}
