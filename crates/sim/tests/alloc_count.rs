//! The allocation-counting shim behind the zero-allocation claim
//! (DESIGN.md §6.11): the event loop's steady state must not allocate.
//!
//! A counting `#[global_allocator]` wraps the system allocator; the test
//! runs the same policy on a small and a 10×-larger tree and asserts the
//! allocation *count* difference stays below a small constant. Any
//! per-event allocation in the driver, the sim backend or a scheduler
//! would show up ~`events` times (tens of thousands here) — a O(1)
//! threshold makes the property unmissable. Setup allocations (tree
//! construction, scheduler state, pre-sized buffers) are per-run
//! constants and cancel out in the comparison.
//!
//! The shim lives in its own integration-test binary because a global
//! allocator is process-wide, and everything is one `#[test]` so no
//! concurrent test can perturb the counter between snapshots.

// The single sanctioned `unsafe` in the workspace (every lib crate is
// `#![forbid(unsafe_code)]`): `GlobalAlloc` is an unsafe trait by
// definition, and this impl only forwards to `System` around a counter.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A growth realloc is an allocation for the purpose of the claim:
        // a per-event buffer growth would still scale with events.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use memtree_sched::{HeuristicKind, PolicySpec};
use memtree_sim::{simulate, SimConfig};
use memtree_tree::{TaskSpec, TaskTree};

/// Allocation count of one full sim run (scheduler minting included —
/// its state is a per-run constant too).
fn allocs_for_run(tree: &TaskTree, kind: HeuristicKind, p: usize) -> u64 {
    let spec = PolicySpec::new(kind, 0);
    let memory = spec.min_feasible(tree).saturating_mul(2);
    let spec = spec.with_memory(memory);
    let instance = spec.instantiate(tree).expect("spec instantiates");
    let before = ALLOCS.load(Ordering::Relaxed);
    let sched = instance.scheduler(tree).expect("feasible");
    let trace = simulate(tree, SimConfig::new(p, memory), sched).expect("run completes");
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(trace.records.len(), tree.len());
    after - before
}

#[test]
fn steady_state_is_allocation_free() {
    // Caterpillar: bursts of parallel leaves plus a serial spine — both
    // ready-set regimes, bounded height (so debug-profile MemBooking
    // stays fast at 20k nodes).
    let spine_spec = TaskSpec::new(2, 6, 1.0);
    let leg_spec = TaskSpec::new(1, 3, 1.0);
    let small = memtree_gen::shapes::caterpillar(500, 3, spine_spec, leg_spec);
    let big = memtree_gen::shapes::caterpillar(5_000, 3, spine_spec, leg_spec);
    assert!(big.len() >= 10 * small.len() - 10);

    for kind in [HeuristicKind::Activation, HeuristicKind::MemBooking] {
        for p in [1usize, 4] {
            // Warm-up run absorbs one-time lazy init (thread-local
            // buffers, etc.) so the measured runs compare clean.
            allocs_for_run(&small, kind, p);
            let a_small = allocs_for_run(&small, kind, p);
            let a_big = allocs_for_run(&big, kind, p);
            // The shim is engaged: minting scheduler state (ledgers,
            // counters, the ready set) must allocate a nonzero handful.
            assert!(a_small > 0, "counting allocator not engaged");
            // ~10× the events must not mean one extra allocation beyond
            // per-run setup noise: the loop itself allocates nothing.
            let delta = a_big.saturating_sub(a_small);
            assert!(
                delta <= 16,
                "{kind} p={p}: {a_big} allocs at 10x events vs {a_small} \
                 (delta {delta}) — the driver loop is allocating per event"
            );
            // And the absolute count stays a small per-run constant.
            assert!(
                a_big <= 256,
                "{kind} p={p}: {a_big} allocations for one run — setup \
                 should be a handful of arena/ledger vectors"
            );
        }
    }
}
