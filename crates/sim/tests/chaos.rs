//! Chaos testing: drive the engine with a randomized-but-legal scheduler
//! and check that the engine's incremental bookkeeping always agrees with
//! the independent trace validator — in both the sequential-task and the
//! moldable (gang-allotment) regime.
//!
//! The `shard_chaos` module extends the suite to the sharded platform:
//! kill or stall a shard worker mid-run and assert the coordinator
//! surfaces a clean `PlatformError` — no deadlock, no leaked ledger
//! reservations — the same failure-path discipline the `Stalled`/`Ledger`
//! executor tests pin down for the threaded runtime.

use memtree_sim::{
    simulate, simulate_moldable, validate::validate_trace, MoldableScheduler, Scheduler, SimConfig,
    SpeedupModel,
};
use memtree_tree::{NodeId, TaskSpec, TaskTree};
use proptest::prelude::*;

/// A scheduler that books the whole bound and starts a pseudo-random legal
/// subset of the available tasks at every event — sometimes nothing at all
/// (as long as something is running), sometimes everything.
struct Chaos<'a> {
    tree: &'a TaskTree,
    bound: u64,
    rng_state: u64,
    ready: Vec<NodeId>,
    remaining_children: Vec<usize>,
    running: usize,
}

impl<'a> Chaos<'a> {
    fn new(tree: &'a TaskTree, bound: u64, seed: u64) -> Self {
        Chaos {
            tree,
            bound,
            rng_state: seed | 1,
            ready: tree.leaves().collect(),
            remaining_children: tree.nodes().map(|i| tree.degree(i)).collect(),
            running: 0,
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

impl Scheduler for Chaos<'_> {
    fn name(&self) -> &str {
        "chaos"
    }

    fn on_event(&mut self, finished: &[NodeId], idle: usize, to_start: &mut Vec<NodeId>) {
        self.running -= finished.len();
        for &j in finished {
            if let Some(p) = self.tree.parent(j) {
                self.remaining_children[p.index()] -= 1;
                if self.remaining_children[p.index()] == 0 {
                    self.ready.push(p);
                }
            }
        }
        // Shuffle-ish: rotate the ready list by a random amount.
        if !self.ready.is_empty() {
            let k = (self.next_rand() as usize) % self.ready.len();
            self.ready.rotate_left(k);
        }
        let mut budget = idle;
        while budget > 0 && !self.ready.is_empty() {
            // Randomly stop early — but never leave the machine idle with
            // nothing running (that would be a stall, not a bug).
            if self.running + to_start.len() > 0 && self.next_rand().is_multiple_of(3) {
                break;
            }
            let i = self.ready.pop().expect("nonempty");
            to_start.push(i);
            budget -= 1;
        }
        self.running += to_start.len();
    }

    fn booked(&self) -> u64 {
        self.bound
    }
}

/// The chaos policy lifted to moldable tasks: the inner [`Chaos`] picks
/// which tasks start (its RNG untouched), and a *separate* RNG spreads the
/// leftover idle processors as random allotments in `1..=cap`. With
/// `cap == 1` no allotment randomness is drawn at all, so the decision
/// sequence is bit-for-bit the sequential chaos policy's.
struct MoldChaos<'a> {
    inner: Chaos<'a>,
    cap: usize,
    allot_state: u64,
    buf: Vec<NodeId>,
}

impl<'a> MoldChaos<'a> {
    fn new(tree: &'a TaskTree, bound: u64, seed: u64, cap: usize) -> Self {
        MoldChaos {
            inner: Chaos::new(tree, bound, seed),
            cap: cap.max(1),
            allot_state: seed.rotate_left(17) | 1,
            buf: Vec::new(),
        }
    }

    fn next_allot_rand(&mut self) -> u64 {
        let mut x = self.allot_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.allot_state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

impl MoldableScheduler for MoldChaos<'_> {
    fn name(&self) -> &str {
        "mold-chaos"
    }

    fn on_event(&mut self, finished: &[NodeId], idle: usize, to_start: &mut Vec<(NodeId, usize)>) {
        self.buf.clear();
        self.inner.on_event(finished, idle, &mut self.buf);
        // Every pick holds one processor; spread the rest randomly.
        let mut leftover = idle - self.buf.len();
        for k in 0..self.buf.len() {
            let i = self.buf[k];
            let mut q = 1;
            if self.cap > 1 {
                let extra = (self.next_allot_rand() as usize) % ((self.cap - 1).min(leftover) + 1);
                q += extra;
                leftover -= extra;
            }
            to_start.push((i, q));
        }
    }

    fn booked(&self) -> u64 {
        Scheduler::booked(&self.inner)
    }
}

fn arb_tree(max_n: usize) -> impl Strategy<Value = TaskTree> {
    (1..=max_n)
        .prop_flat_map(|n| {
            let parents = (1..n).map(|i| 0..i).collect::<Vec<_>>();
            let specs = proptest::collection::vec((0u64..20, 0u64..20, 0u32..5), n);
            (parents, specs)
        })
        .prop_map(|(parents, specs)| {
            let mut full: Vec<Option<usize>> = vec![None];
            full.extend(parents.into_iter().map(Some));
            let specs: Vec<TaskSpec> = specs
                .into_iter()
                .map(|(e, f, t)| TaskSpec::new(e, f, t as f64))
                .collect();
            TaskTree::from_parents(&full, &specs).unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever legal order the chaos policy produces, the engine's trace
    /// passes full independent validation and the invariant quantities
    /// agree.
    #[test]
    fn chaos_traces_always_validate(tree in arb_tree(60), seed in 1u64..500, p in 1usize..6) {
        // Bound big enough that actual memory always fits: Σ everything.
        let bound: u64 = tree
            .nodes()
            .map(|i| tree.exec(i) + tree.output(i))
            .sum::<u64>()
            .max(1);
        let trace = simulate(
            &tree,
            SimConfig::new(p, bound).with_profile(),
            Chaos::new(&tree, bound, seed),
        )
        .unwrap();
        validate_trace(&tree, &trace).unwrap();
        prop_assert_eq!(trace.records.len(), tree.len());
        prop_assert!(trace.max_concurrency() <= p);
        // The recorded profile's maximum equals the recorded peak.
        let prof_max = trace.profile.iter().map(|s| s.actual).max().unwrap_or(0);
        prop_assert_eq!(prof_max, trace.peak_actual);
        // CSV exports are well-formed.
        let csv = trace.records_to_csv();
        prop_assert_eq!(csv.lines().count(), tree.len() + 1);
        let pcsv = trace.profile_to_csv();
        prop_assert!(pcsv.starts_with("time,actual,booked"));
    }

    /// Chaos scheduling never beats the list-scheduling bound from below:
    /// makespan is at least the critical path and at least total/p.
    #[test]
    fn chaos_makespan_respects_classical_bounds(tree in arb_tree(50), seed in 1u64..200) {
        let p = 3;
        let bound: u64 = tree
            .nodes()
            .map(|i| tree.exec(i) + tree.output(i))
            .sum::<u64>()
            .max(1);
        let trace = simulate(&tree, SimConfig::new(p, bound), Chaos::new(&tree, bound, seed))
            .unwrap();
        let stats = memtree_tree::TreeStats::compute(&tree);
        prop_assert!(trace.makespan >= stats.critical_path(&tree) - 1e-9);
        prop_assert!(trace.makespan >= tree.total_time() / p as f64 - 1e-9);
        prop_assert!(trace.makespan <= tree.total_time() + 1e-9);
    }

    /// Moldable chaos: randomized allotment caps, randomized gang sizes —
    /// whatever legal pattern comes out, the gang engine's trace passes
    /// the independent moldable validator (precedence, per-task duration
    /// under the speedup model, allotment sweep ≤ p, every task ran).
    #[test]
    fn moldable_chaos_traces_always_validate(
        tree in arb_tree(50),
        seed in 1u64..400,
        p in 1usize..6,
        cap in 1usize..6,
    ) {
        let bound: u64 = tree
            .nodes()
            .map(|i| tree.exec(i) + tree.output(i))
            .sum::<u64>()
            .max(1);
        let trace = simulate_moldable(
            &tree,
            p,
            bound,
            SpeedupModel::Linear,
            MoldChaos::new(&tree, bound, seed, cap),
        )
        .unwrap();
        trace.validate(&tree, SpeedupModel::Linear).unwrap();
        prop_assert_eq!(trace.records.len(), tree.len());
        prop_assert!(trace.max_allotment() as usize <= cap.min(p));
        prop_assert!(trace.allotments().iter().all(|&q| q >= 1));
        // The always-on profile agrees with the recorded peaks.
        let prof_max = trace.profile.iter().map(|s| s.actual).max().unwrap_or(0);
        prop_assert_eq!(prof_max, trace.peak_actual);
    }

    /// Single-worker gangs are not a special case: with every cap at 1
    /// the moldable engine replays the sequential engine bit-for-bit —
    /// same starts, finishes, makespan, peaks and event count.
    #[test]
    fn unit_gangs_degenerate_to_the_sequential_path_bit_for_bit(
        tree in arb_tree(50),
        seed in 1u64..400,
        p in 1usize..6,
    ) {
        let bound: u64 = tree
            .nodes()
            .map(|i| tree.exec(i) + tree.output(i))
            .sum::<u64>()
            .max(1);
        let seq = simulate(
            &tree,
            SimConfig::new(p, bound),
            Chaos::new(&tree, bound, seed),
        )
        .unwrap();
        let mold = simulate_moldable(
            &tree,
            p,
            bound,
            SpeedupModel::Linear,
            MoldChaos::new(&tree, bound, seed, 1),
        )
        .unwrap();
        prop_assert_eq!(mold.records.len(), seq.records.len());
        for i in tree.nodes() {
            let m = mold.records[i.index()];
            let s = seq.record(i);
            prop_assert_eq!(m.procs, 1);
            // Bit-for-bit: same f64s, not same-within-epsilon.
            prop_assert_eq!(m.start, s.start, "start of {:?}", i);
            prop_assert_eq!(m.finish, s.finish, "finish of {:?}", i);
        }
        prop_assert_eq!(mold.makespan, seq.makespan);
        prop_assert_eq!(mold.peak_booked, seq.peak_booked);
        prop_assert_eq!(mold.peak_actual, seq.peak_actual);
        prop_assert_eq!(mold.events, seq.events);
    }
}

/// Chaos on the sharded platform: a shard worker killed or stalled
/// mid-run must surface a clean `PlatformError` with every budget
/// reservation released — never a deadlock, never a poisoned
/// coordinator.
mod shard_chaos {
    use memtree_runtime::{Platform, PlatformError, RuntimeError, ShardedPlatform, Workload};
    use memtree_sched::{HeuristicKind, PolicySpec};
    use memtree_sim::validate::validate_shard_plan;
    use memtree_tree::partition::{partition, PartitionPolicy};
    use memtree_tree::{TaskSpec, TaskTree};

    /// Root 0; a bushy 21-node subtree (node 1 with two chains of 10)
    /// plus two 13-node chains. Partitioned 4 ways this yields exactly
    /// three shards — one of 21 nodes, two of 12 — and a 3-node residual,
    /// so a fault at local index 15 exists in exactly one shard worker.
    fn chaos_tree() -> TaskTree {
        let mut parents: Vec<Option<usize>> = vec![None, Some(0)];
        for k in 0..2 {
            let mut prev = 1usize;
            for _ in 0..10 {
                parents.push(Some(prev));
                prev = parents.len() - 1;
            }
            let _ = k;
        }
        for _ in 0..2 {
            let mut prev = 0usize;
            for _ in 0..13 {
                parents.push(Some(prev));
                prev = parents.len() - 1;
            }
        }
        let specs = vec![TaskSpec::new(1, 3, 1.0); parents.len()];
        TaskTree::from_parents(&parents, &specs).unwrap()
    }

    fn roomy_spec(tree: &TaskTree) -> PolicySpec {
        PolicySpec::new(
            HeuristicKind::MemBooking,
            memtree_sched::min_feasible_memory(tree) * 100,
        )
    }

    /// Pins the partition shape the fault injection below relies on: the
    /// plan validates, and local index 15 exists in exactly one part.
    #[test]
    fn chaos_tree_partitions_as_documented() {
        let tree = chaos_tree();
        let part = partition(&tree, &PartitionPolicy::balanced(4));
        validate_shard_plan(&tree, &part.assignment, part.shard_count()).unwrap();
        assert_eq!(part.shard_count(), 3);
        let big: Vec<_> = part.shards.iter().filter(|s| s.tree.len() > 15).collect();
        assert_eq!(big.len(), 1, "exactly one shard holds local index 15");
        assert!(part.residual.tree.len() <= 15);
    }

    /// Kill: the injected payload panic takes down one shard worker; the
    /// coordinator reports `ShardFailed(WorkerPanic)` cleanly and a
    /// subsequent run of the same platform value succeeds — no leaked
    /// reservations, no poisoned state (the post-phase ledger audit runs
    /// on the failure path too).
    #[test]
    fn killed_shard_worker_surfaces_shard_failed() {
        let tree = chaos_tree();
        let spec = roomy_spec(&tree);
        let platform = ShardedPlatform::new(4).with_workload(Workload::FailAt { node: 15 });
        let err = platform.run(&tree, &spec).unwrap_err();
        match err {
            PlatformError::ShardFailed { shard, source } => {
                assert!(
                    matches!(*source, PlatformError::Runtime(RuntimeError::WorkerPanic)),
                    "expected WorkerPanic inside shard {shard}, got {source}"
                );
            }
            other => panic!("expected ShardFailed, got {other}"),
        }
        // The platform value is reusable: nothing leaked across the run.
        let report = platform
            .with_workload(Workload::Noop)
            .run(&tree, &spec)
            .unwrap();
        assert_eq!(report.tasks_run, tree.len());
    }

    /// Two kills in one run: local index 5 exists in *every* shard
    /// subtree, so all three shard workers panic. Which completes first
    /// is OS scheduling, but `first_err` must deterministically pick the
    /// lowest shard index (the coordinator's `is_none_or` tie-break), and
    /// every budget must be released on the multi-failure path — a fresh
    /// run on the same platform value succeeds.
    #[test]
    fn two_failed_shards_pick_the_lowest_shard_index() {
        let tree = chaos_tree();
        let spec = roomy_spec(&tree);
        // Sanity: the fault index exists in at least two shards.
        let part = partition(&tree, &PartitionPolicy::balanced(4));
        let hit = part.shards.iter().filter(|s| s.tree.len() > 5).count();
        assert!(hit >= 2, "fault must land in several shards, hit {hit}");
        let platform = ShardedPlatform::new(4).with_workload(Workload::FailAt { node: 5 });
        for round in 0..5 {
            let err = platform.run(&tree, &spec).unwrap_err();
            match err {
                PlatformError::ShardFailed { shard, source } => {
                    assert_eq!(
                        shard, 0,
                        "round {round}: first_err must pick the lowest failed shard"
                    );
                    assert!(
                        matches!(*source, PlatformError::Runtime(RuntimeError::WorkerPanic)),
                        "round {round}: got {source}"
                    );
                }
                other => panic!("round {round}: expected ShardFailed, got {other}"),
            }
        }
        // No leaked reservations across five failed runs: the same
        // platform value still runs the whole tree (the coordinator's
        // post-phase ledger audit also re-checks this in debug builds).
        let report = platform
            .with_workload(Workload::Noop)
            .run(&tree, &spec)
            .unwrap();
        assert_eq!(report.tasks_run, tree.len());
    }

    /// Overall deadline: shards that keep *trickling* reports reset a
    /// per-message idle watchdog forever, so the phase must also respect
    /// a total deadline. Here every worker sleeps far past the deadline
    /// with no idle timeout configured at all — only the deadline can
    /// stop the wait.
    #[test]
    fn overall_deadline_bounds_the_shard_phase() {
        let tree = chaos_tree();
        let spec = roomy_spec(&tree);
        let platform = ShardedPlatform::new(4)
            .with_workload(Workload::Sleep {
                nanos_per_time_unit: 2e8, // 200 ms per task, every task
                max_nanos: 200_000_000,
            })
            .with_deadline(std::time::Duration::from_millis(60));
        let started = std::time::Instant::now();
        let err = platform.run(&tree, &spec).unwrap_err();
        assert!(
            matches!(err, PlatformError::ShardStalled { .. }),
            "got {err}"
        );
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "deadline enforcement took {:?}",
            started.elapsed()
        );
        // The still-running workers were quarantined, not stripped of
        // their budgets; the platform value stays reusable for fresh
        // runs (each run owns a fresh coordinator ledger).
        let report = platform
            .with_workload(Workload::Noop)
            .run(&tree, &spec)
            .unwrap();
        assert_eq!(report.tasks_run, tree.len());
    }

    /// Stall: a payload sleeping far past the watchdog makes the shard
    /// workers go silent; the coordinator must time out with
    /// `ShardStalled` instead of blocking forever. Still-running workers
    /// keep their budgets — quarantined until their exit is confirmed,
    /// never released while the worker can still report.
    #[test]
    fn stalled_shard_worker_trips_the_watchdog() {
        let tree = chaos_tree();
        let spec = roomy_spec(&tree);
        let platform = ShardedPlatform::new(4)
            .with_workload(Workload::Sleep {
                nanos_per_time_unit: 2e8, // 200 ms per task, every task
                max_nanos: 200_000_000,
            })
            .with_timeout(std::time::Duration::from_millis(40));
        let started = std::time::Instant::now();
        let err = platform.run(&tree, &spec).unwrap_err();
        match err {
            PlatformError::ShardStalled {
                reported,
                total,
                quarantined,
            } => {
                assert!(reported < total, "{reported}/{total}");
                assert_eq!(total, 3, "the three shards of the chaos tree");
                // All workers were mid-sleep: every unreported shard's
                // budget is held in quarantine, not released on a timer.
                assert!(quarantined > 0, "stalled budgets were released");
            }
            other => panic!("expected ShardStalled, got {other}"),
        }
        // Clean and prompt: the watchdog fired, the run did not wait for
        // the sleeping workers to finish their subtrees.
        assert!(
            started.elapsed() < std::time::Duration::from_secs(5),
            "stall detection took {:?}",
            started.elapsed()
        );
        // A fresh run on the same platform value (fast payload) works.
        let report = platform
            .with_workload(Workload::Noop)
            .run(&tree, &spec)
            .unwrap();
        assert_eq!(report.tasks_run, tree.len());
    }

    /// An infeasible budget split refuses up front — the sharded
    /// analogue of the executor's `Ledger` failure path: the invariant
    /// machinery rejects the run instead of letting shards overcommit.
    #[test]
    fn infeasible_budget_split_refuses_without_launching() {
        let tree = chaos_tree();
        let min = memtree_sched::min_feasible_memory(&tree);
        let spec = PolicySpec::new(HeuristicKind::MemBooking, min);
        let err = ShardedPlatform::new(4).run(&tree, &spec).unwrap_err();
        assert!(err.is_infeasible(), "got {err}");
    }
}
