//! A fixed-capacity bitset for per-node flags.
//!
//! The event-loop driver keeps `started`/`finished` flags per node; at
//! million-node scale a `Vec<bool>` costs 8× the cache footprint of a
//! bitset and the flags are on the hottest path in the loop (precedence
//! checks touch every child of every started node). `BitSet` is the
//! minimal fixed-size replacement: all storage up front, no growth, no
//! per-operation allocation (DESIGN.md §6.11).

/// A fixed-size set of indices `0..len`, one bit each.
#[derive(Clone, Debug)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// An empty set over `0..len`. All storage is allocated here.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64).max(1)],
            len,
        }
    }

    /// The universe size this set was built for.
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Whether `i` is in the set.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Inserts `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Removes `i`.
    #[inline]
    pub fn unset(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Number of indices in the set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_unset_roundtrip() {
        let mut b = BitSet::new(130);
        assert_eq!(b.capacity(), 130);
        for i in [0usize, 63, 64, 65, 129] {
            assert!(!b.get(i));
            b.set(i);
            assert!(b.get(i));
        }
        assert_eq!(b.count(), 5);
        b.unset(64);
        assert!(!b.get(64));
        assert!(b.get(63) && b.get(65));
        assert_eq!(b.count(), 4);
    }

    #[test]
    fn zero_capacity_is_fine() {
        let b = BitSet::new(0);
        assert_eq!(b.count(), 0);
    }
}
