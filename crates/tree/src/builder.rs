//! Incremental construction of [`TaskTree`]s.

use crate::error::TreeError;
use crate::node::{NodeId, TaskSpec};
use crate::tree::{TaskTree, NO_PARENT};
use crate::Result;

/// Builds a [`TaskTree`] node by node.
///
/// Nodes may reference parents that have not been pushed yet (pass the
/// future id explicitly via [`TreeBuilder::push_with_parent_index`]), so
/// trees can be entered in any order. [`TreeBuilder::build`] validates the
/// structure: exactly one root, no cycles, in-range parents, finite
/// non-negative times.
///
/// ```
/// use memtree_tree::{TreeBuilder, TaskSpec};
///
/// let mut b = TreeBuilder::new();
/// let root = b.push(None, TaskSpec::new(0, 4, 1.0));
/// let left = b.push(Some(root), TaskSpec::new(1, 2, 1.0));
/// let _right = b.push(Some(root), TaskSpec::new(1, 3, 2.0));
/// let _deep = b.push(Some(left), TaskSpec::new(0, 1, 0.5));
/// let tree = b.build().unwrap();
/// assert_eq!(tree.len(), 4);
/// assert_eq!(tree.root(), root);
/// ```
#[derive(Debug, Default, Clone)]
pub struct TreeBuilder {
    parent: Vec<u32>,
    exec: Vec<u64>,
    output: Vec<u64>,
    time: Vec<f64>,
}

impl TreeBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty builder with room for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        TreeBuilder {
            parent: Vec::with_capacity(n),
            exec: Vec::with_capacity(n),
            output: Vec::with_capacity(n),
            time: Vec::with_capacity(n),
        }
    }

    /// Number of nodes pushed so far.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether no nodes have been pushed.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Appends a node with the given parent and returns its id.
    pub fn push(&mut self, parent: Option<NodeId>, spec: TaskSpec) -> NodeId {
        let id = NodeId::from_index(self.parent.len());
        self.parent.push(parent.map_or(NO_PARENT, |p| p.0));
        self.exec.push(spec.exec);
        self.output.push(spec.output);
        self.time.push(spec.time);
        id
    }

    /// Appends a node whose parent is given as a raw index which may not
    /// have been pushed yet (forward reference).
    pub fn push_with_parent_index(&mut self, parent: Option<usize>, spec: TaskSpec) -> NodeId {
        self.push(parent.map(NodeId::from_index), spec)
    }

    /// Finalises the tree, checking structural invariants.
    pub fn build(self) -> Result<TaskTree> {
        let n = self.parent.len();
        if n == 0 {
            return Err(TreeError::Empty);
        }

        // Locate the root and range-check parents.
        let mut root: Option<NodeId> = None;
        for (ix, &p) in self.parent.iter().enumerate() {
            let id = NodeId::from_index(ix);
            if p == NO_PARENT {
                if let Some(r) = root {
                    return Err(TreeError::MultipleRoots(r, id));
                }
                root = Some(id);
            } else if p as usize >= n {
                return Err(TreeError::ParentOutOfRange {
                    node: id,
                    parent: p,
                });
            } else if p as usize == ix {
                return Err(TreeError::Cycle(id));
            }
        }
        let root = root.ok_or(TreeError::NoRoot)?;

        // Times must be finite and non-negative.
        for (ix, &t) in self.time.iter().enumerate() {
            if !t.is_finite() || t < 0.0 {
                return Err(TreeError::BadTime(NodeId::from_index(ix)));
            }
        }

        // Cycle detection: every node must reach the root. Iterative
        // colouring with path marking: 0 = unvisited, 1 = on current path,
        // 2 = proven to reach the root.
        let mut colour = vec![0u8; n];
        colour[root.index()] = 2;
        let mut path: Vec<usize> = Vec::new();
        for start in 0..n {
            if colour[start] != 0 {
                continue;
            }
            path.clear();
            let mut cur = start;
            loop {
                match colour[cur] {
                    0 => {
                        colour[cur] = 1;
                        path.push(cur);
                        cur = self.parent[cur] as usize;
                    }
                    1 => {
                        // Found a node already on the current path: cycle.
                        return Err(TreeError::Cycle(NodeId::from_index(cur)));
                    }
                    _ => break, // reaches the root
                }
            }
            for &p in &path {
                colour[p] = 2;
            }
        }

        // Build the CSR children structure via counting sort; iterating
        // nodes in id order yields id-sorted children groups.
        let mut counts = vec![0u32; n + 1];
        for &p in &self.parent {
            if p != NO_PARENT {
                counts[p as usize + 1] += 1;
            }
        }
        let mut child_ptr = counts;
        for i in 0..n {
            child_ptr[i + 1] += child_ptr[i];
        }
        let mut cursor = child_ptr.clone();
        let mut children = vec![NodeId(0); n - 1];
        for (ix, &p) in self.parent.iter().enumerate() {
            if p != NO_PARENT {
                let slot = cursor[p as usize] as usize;
                children[slot] = NodeId::from_index(ix);
                cursor[p as usize] += 1;
            }
        }

        Ok(TaskTree {
            parent: self.parent,
            child_ptr,
            children,
            exec: self.exec,
            output: self.output,
            time: self.time,
            root,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_rejected() {
        assert_eq!(TreeBuilder::new().build().unwrap_err(), TreeError::Empty);
    }

    #[test]
    fn single_node_is_fine() {
        let mut b = TreeBuilder::new();
        let r = b.push(None, TaskSpec::default());
        let t = b.build().unwrap();
        assert_eq!(t.root(), r);
        assert_eq!(t.len(), 1);
        assert!(t.is_leaf(r));
    }

    #[test]
    fn multiple_roots_rejected() {
        let mut b = TreeBuilder::new();
        b.push(None, TaskSpec::default());
        b.push(None, TaskSpec::default());
        assert!(matches!(b.build(), Err(TreeError::MultipleRoots(..))));
    }

    #[test]
    fn cycle_rejected() {
        // 0 -> 1 -> 2 -> 1 is impossible with single parents, but
        // 1 -> 2, 2 -> 1 with root 0 elsewhere is a classic cycle.
        let mut b = TreeBuilder::new();
        b.push_with_parent_index(None, TaskSpec::default()); // 0, root
        b.push_with_parent_index(Some(2), TaskSpec::default()); // 1 -> 2
        b.push_with_parent_index(Some(1), TaskSpec::default()); // 2 -> 1
        assert!(matches!(b.build(), Err(TreeError::Cycle(_))));
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = TreeBuilder::new();
        b.push_with_parent_index(None, TaskSpec::default());
        b.push_with_parent_index(Some(1), TaskSpec::default());
        assert!(matches!(b.build(), Err(TreeError::Cycle(_))));
    }

    #[test]
    fn out_of_range_parent_rejected() {
        let mut b = TreeBuilder::new();
        b.push_with_parent_index(None, TaskSpec::default());
        b.push_with_parent_index(Some(99), TaskSpec::default());
        assert!(matches!(b.build(), Err(TreeError::ParentOutOfRange { .. })));
    }

    #[test]
    fn no_root_is_cycle() {
        let mut b = TreeBuilder::new();
        b.push_with_parent_index(Some(1), TaskSpec::default());
        b.push_with_parent_index(Some(0), TaskSpec::default());
        let e = b.build().unwrap_err();
        assert!(matches!(e, TreeError::NoRoot | TreeError::Cycle(_)));
    }

    #[test]
    fn bad_time_rejected() {
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            let mut b = TreeBuilder::new();
            b.push(None, TaskSpec::new(0, 1, bad));
            assert!(
                matches!(b.build(), Err(TreeError::BadTime(_))),
                "time {bad} accepted"
            );
        }
    }

    #[test]
    fn forward_parent_reference_works() {
        // Children pushed before their parent.
        let mut b = TreeBuilder::new();
        b.push_with_parent_index(Some(2), TaskSpec::default()); // 0
        b.push_with_parent_index(Some(2), TaskSpec::default()); // 1
        b.push_with_parent_index(None, TaskSpec::default()); // 2, root
        let t = b.build().unwrap();
        assert_eq!(t.root(), NodeId(2));
        assert_eq!(t.children(NodeId(2)), &[NodeId(0), NodeId(1)]);
    }

    #[test]
    fn children_are_sorted_by_id() {
        let mut b = TreeBuilder::new();
        let r = b.push(None, TaskSpec::default());
        for _ in 0..5 {
            b.push(Some(r), TaskSpec::default());
        }
        let t = b.build().unwrap();
        let ch = t.children(r);
        assert!(ch.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn deep_chain_builds_without_stack_overflow() {
        let n = 200_000;
        let mut b = TreeBuilder::with_capacity(n);
        b.push(None, TaskSpec::default());
        for i in 1..n {
            b.push_with_parent_index(Some(i - 1), TaskSpec::default());
        }
        let t = b.build().unwrap();
        assert_eq!(t.len(), n);
        assert!(t.is_leaf(NodeId::from_index(n - 1)));
    }
}
