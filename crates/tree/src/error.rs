//! Error type for tree construction and validation.

use crate::node::NodeId;
use std::fmt;

/// Errors raised while building, validating or parsing a task tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The tree has no nodes.
    Empty,
    /// More than one node has no parent.
    MultipleRoots(NodeId, NodeId),
    /// No node qualifies as a root (parent pointers form a cycle).
    NoRoot,
    /// A parent reference points outside `0..n`.
    ParentOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Its out-of-range parent index.
        parent: u32,
    },
    /// A node is its own ancestor.
    Cycle(NodeId),
    /// A node id appears twice during construction.
    DuplicateNode(NodeId),
    /// An order/permutation has the wrong length or repeats nodes.
    BadPermutation {
        /// Nodes the tree has.
        expected: usize,
        /// Entries the order supplied.
        got: usize,
    },
    /// An order is not a topological order of the tree (a parent precedes
    /// one of its children).
    NotTopological {
        /// The parent that appeared too early.
        parent: NodeId,
        /// The child that had not been listed yet.
        child: NodeId,
    },
    /// A processing time is negative, NaN or infinite.
    BadTime(NodeId),
    /// Parse error in the text format.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// Underlying I/O failure (message only, to keep the error `Clone`).
    Io(String),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::Empty => write!(f, "tree has no nodes"),
            TreeError::MultipleRoots(a, b) => {
                write!(f, "multiple roots: {a:?} and {b:?}")
            }
            TreeError::NoRoot => write!(f, "no root (parent pointers form a cycle)"),
            TreeError::ParentOutOfRange { node, parent } => {
                write!(f, "node {node:?} has out-of-range parent {parent}")
            }
            TreeError::Cycle(n) => write!(f, "node {n:?} is its own ancestor"),
            TreeError::DuplicateNode(n) => write!(f, "node {n:?} defined twice"),
            TreeError::BadPermutation { expected, got } => {
                write!(
                    f,
                    "order must be a permutation of {expected} nodes, got {got}"
                )
            }
            TreeError::NotTopological { parent, child } => {
                write!(
                    f,
                    "order is not topological: {parent:?} precedes its child {child:?}"
                )
            }
            TreeError::BadTime(n) => {
                write!(f, "node {n:?} has a negative or non-finite processing time")
            }
            TreeError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            TreeError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for TreeError {}

impl From<std::io::Error> for TreeError {
    fn from(e: std::io::Error) -> Self {
        TreeError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TreeError::MultipleRoots(NodeId(0), NodeId(3));
        assert!(e.to_string().contains("n0"));
        assert!(e.to_string().contains("n3"));
        let e = TreeError::Parse {
            line: 7,
            msg: "bad field".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: TreeError = io.into();
        assert!(matches!(e, TreeError::Io(_)));
    }
}
