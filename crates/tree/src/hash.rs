//! Canonical content hashing of task trees.
//!
//! [`content_hash`] digests everything that defines a tree as a scheduling
//! problem — the parent array plus every task's `(n_i, f_i, t_i)` — into a
//! stable 64-bit value. Two trees hash equal iff they are equal as
//! [`TaskTree`] values (the CSR children arrays are derived from the
//! parents, so the parent array is the canonical structure). The hash is
//! the key ingredient of sweep-level caching: a persisted experiment cell
//! is addressed by the tree's content, not by its name or its position in
//! a corpus, so renaming or reordering a corpus never invalidates results
//! while any structural or size change does.
//!
//! The digest is FNV-1a, fixed here byte for byte (not `DefaultHasher`,
//! whose output may change across Rust releases) so hashes are stable
//! across processes, platforms and compiler versions — cache files written
//! by one build stay valid for the next.

use crate::tree::TaskTree;

/// Incremental FNV-1a 64-bit hasher with a stable byte-level definition.
///
/// Deliberately *not* `std::hash::Hasher`: callers feed typed values
/// through the explicit `write_*` methods so the byte stream (and hence
/// the digest) is pinned by this module, independent of `Hash` impls.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// A hasher at the standard FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// A hasher seeded with a domain-separation tag, so independent key
    /// spaces (tree hashes, spec fingerprints, cell keys) cannot collide
    /// by construction.
    pub fn with_tag(tag: &str) -> Self {
        let mut h = Fnv64::new();
        h.write_bytes(tag.as_bytes());
        h
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `u32` (little-endian bytes).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds an `f64` through its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feeds a length-prefixed string (prefix avoids concatenation
    /// ambiguity between adjacent fields).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// The canonical content hash of `tree`; see the module docs.
pub fn content_hash(tree: &TaskTree) -> u64 {
    let mut h = Fnv64::with_tag("memtree-tree-v1");
    h.write_u64(tree.len() as u64);
    for i in tree.nodes() {
        // u32::MAX is the root sentinel (no node index reaches it: CSR
        // offsets are u32 too).
        h.write_u32(tree.parent(i).map_or(u32::MAX, |p| p.index() as u32));
        h.write_u64(tree.exec(i));
        h.write_u64(tree.output(i));
        h.write_f64(tree.time(i));
    }
    h.finish()
}

impl TaskTree {
    /// The canonical content hash of this tree (see [`content_hash`]).
    pub fn content_hash(&self) -> u64 {
        content_hash(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::TaskSpec;

    fn tree(specs: &[(Option<usize>, u64, u64, f64)]) -> TaskTree {
        let parents: Vec<Option<usize>> = specs.iter().map(|s| s.0).collect();
        let tasks: Vec<TaskSpec> = specs
            .iter()
            .map(|&(_, n, f, t)| TaskSpec::new(n, f, t))
            .collect();
        TaskTree::from_parents(&parents, &tasks).unwrap()
    }

    #[test]
    fn equal_trees_hash_equal() {
        let a = tree(&[(None, 1, 10, 1.0), (Some(0), 2, 20, 2.0)]);
        let b = tree(&[(None, 1, 10, 1.0), (Some(0), 2, 20, 2.0)]);
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn any_field_changes_the_hash() {
        let base = tree(&[(None, 1, 10, 1.0), (Some(0), 2, 20, 2.0)]);
        let variants = [
            tree(&[(None, 1, 10, 1.0), (Some(0), 3, 20, 2.0)]), // exec
            tree(&[(None, 1, 10, 1.0), (Some(0), 2, 21, 2.0)]), // output
            tree(&[(None, 1, 10, 1.0), (Some(0), 2, 20, 2.5)]), // time
            tree(&[
                // structure
                (None, 1, 10, 1.0),
                (Some(0), 2, 20, 2.0),
                (Some(0), 2, 20, 2.0),
            ]),
        ];
        for v in &variants {
            assert_ne!(base.content_hash(), v.content_hash());
        }
    }

    #[test]
    fn structure_not_just_multiset_of_specs() {
        // Same node specs, different parent wiring.
        let chain = tree(&[
            (None, 1, 1, 1.0),
            (Some(0), 1, 1, 1.0),
            (Some(1), 1, 1, 1.0),
        ]);
        let star = tree(&[
            (None, 1, 1, 1.0),
            (Some(0), 1, 1, 1.0),
            (Some(0), 1, 1, 1.0),
        ]);
        assert_ne!(chain.content_hash(), star.content_hash());
    }

    #[test]
    fn digest_is_pinned() {
        // Guards the byte-level definition: a change here silently
        // invalidates every cache ever written, so it must be deliberate.
        let t = tree(&[(None, 1, 10, 1.0), (Some(0), 2, 20, 2.0)]);
        assert_eq!(t.content_hash(), t.content_hash());
        let mut h = Fnv64::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c, "FNV-1a(\"a\") reference");
    }

    #[test]
    fn tag_separates_domains() {
        let mut a = Fnv64::with_tag("domain-a");
        let mut b = Fnv64::with_tag("domain-b");
        a.write_u64(7);
        b.write_u64(7);
        assert_ne!(a.finish(), b.finish());
    }
}
