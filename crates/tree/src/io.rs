//! Plain-text serialisation of task trees.
//!
//! The format is deliberately trivial so corpora can be inspected, diffed
//! and regenerated without extra dependencies:
//!
//! ```text
//! # memtree v1          (comment lines start with '#')
//! 5                      (node count)
//! -1 0 5 1.0             (per node: parent exec output time; -1 = root)
//! 0 1 6 1.0
//! ...
//! ```
//!
//! Nodes appear in id order; the `i`-th data line describes node `i`.
//!
//! The parser is **strict**: exactly `n` node lines of exactly four
//! fields each, and nothing but comments or blank lines after them. A
//! tree document crosses process boundaries (the shard-worker wire
//! protocol frames subtrees in this format), where a concatenated file,
//! a wrong node count or a stray field is silent corruption if accepted
//! — all three are hard [`TreeError::Parse`] errors.

use crate::error::TreeError;
use crate::node::TaskSpec;
use crate::tree::TaskTree;
use crate::Result;
use std::io::{BufRead, Write};

/// Magic header written at the top of every file.
pub const HEADER: &str = "# memtree v1";

/// Serialises `tree` to `w` in the v1 text format.
pub fn write_tree<W: Write>(tree: &TaskTree, w: &mut W) -> Result<()> {
    writeln!(w, "{HEADER}")?;
    writeln!(w, "{}", tree.len())?;
    for i in tree.nodes() {
        let p = tree.parent(i).map_or(-1i64, |p| p.index() as i64);
        let s = tree.spec(i);
        writeln!(w, "{} {} {} {}", p, s.exec, s.output, s.time)?;
    }
    Ok(())
}

/// Serialises `tree` to an in-memory string.
pub fn tree_to_string(tree: &TaskTree) -> String {
    let mut buf = Vec::new();
    write_tree(tree, &mut buf).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("format is ASCII")
}

/// Parses a tree from `r` in the v1 text format.
pub fn read_tree<R: BufRead>(r: &mut R) -> Result<TaskTree> {
    let mut lines = r.lines().enumerate();

    let next_data_line = |lines: &mut dyn Iterator<Item = (usize, std::io::Result<String>)>|
     -> Result<Option<(usize, String)>> {
        for (no, line) in lines {
            let line = line?;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            return Ok(Some((no + 1, trimmed.to_string())));
        }
        Ok(None)
    };

    let (no, count_line) = next_data_line(&mut lines)?.ok_or(TreeError::Parse {
        line: 0,
        msg: "missing node count".into(),
    })?;
    let n: usize = count_line.parse().map_err(|_| TreeError::Parse {
        line: no,
        msg: format!("bad node count {count_line:?}"),
    })?;

    let mut builder = crate::builder::TreeBuilder::with_capacity(n);
    for _ in 0..n {
        let (no, line) = next_data_line(&mut lines)?.ok_or(TreeError::Parse {
            line: 0,
            msg: format!("expected {n} node lines"),
        })?;
        let mut fields = line.split_whitespace();
        let mut field = |name: &str| {
            fields.next().ok_or(TreeError::Parse {
                line: no,
                msg: format!("missing field {name}"),
            })
        };
        let parent: i64 = field("parent")?.parse().map_err(|_| TreeError::Parse {
            line: no,
            msg: "bad parent".into(),
        })?;
        let exec: u64 = field("exec")?.parse().map_err(|_| TreeError::Parse {
            line: no,
            msg: "bad exec size".into(),
        })?;
        let output: u64 = field("output")?.parse().map_err(|_| TreeError::Parse {
            line: no,
            msg: "bad output size".into(),
        })?;
        let time: f64 = field("time")?.parse().map_err(|_| TreeError::Parse {
            line: no,
            msg: "bad time".into(),
        })?;
        if let Some(extra) = fields.next() {
            return Err(TreeError::Parse {
                line: no,
                msg: format!("unexpected extra field {extra:?} after the four node fields"),
            });
        }
        let parent = if parent < 0 {
            None
        } else {
            Some(parent as usize)
        };
        builder.push_with_parent_index(parent, TaskSpec { exec, output, time });
    }
    // Drain the rest of the input: after the declared node count only
    // comments and blank lines may follow. Anything else means the count
    // was wrong or two documents were concatenated — either way the tree
    // just parsed does not describe the input, so reject it.
    if let Some((no, line)) = next_data_line(&mut lines)? {
        return Err(TreeError::Parse {
            line: no,
            msg: format!("unexpected data {line:?} after the declared {n} node lines"),
        });
    }
    builder.build()
}

/// Parses a tree from a string in the v1 text format.
pub fn tree_from_str(s: &str) -> Result<TaskTree> {
    read_tree(&mut s.as_bytes())
}

/// Adds the file path to an error raised while reading or writing it:
/// I/O failures and parse errors alike must name the offending file —
/// a worker handshake that dies on a bare "permission denied" with no
/// path is undebuggable.
fn with_path(e: TreeError, path: &std::path::Path) -> TreeError {
    match e {
        TreeError::Io(msg) => TreeError::Io(format!("{}: {msg}", path.display())),
        TreeError::Parse { line, msg } => TreeError::Parse {
            line,
            msg: format!("{}: {msg}", path.display()),
        },
        other => other,
    }
}

/// Writes `tree` to the file at `path`. Failures name `path`.
pub fn save_tree(tree: &TaskTree, path: &std::path::Path) -> Result<()> {
    let save = || -> Result<()> {
        let file = std::fs::File::create(path)?;
        let mut w = std::io::BufWriter::new(file);
        write_tree(tree, &mut w)?;
        w.flush()?;
        Ok(())
    };
    save().map_err(|e| with_path(e, path))
}

/// Reads a tree from the file at `path`. Failures name `path`.
pub fn load_tree(path: &std::path::Path) -> Result<TaskTree> {
    let load = || -> Result<TaskTree> {
        let file = std::fs::File::open(path)?;
        read_tree(&mut std::io::BufReader::new(file))
    };
    load().map_err(|e| with_path(e, path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeId, TaskSpec};

    fn sample() -> TaskTree {
        TaskTree::from_parents(
            &[None, Some(0), Some(0), Some(1)],
            &[
                TaskSpec::new(1, 5, 1.5),
                TaskSpec::new(2, 6, 2.0),
                TaskSpec::new(3, 7, 0.25),
                TaskSpec::new(4, 8, 10.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample();
        let s = tree_to_string(&t);
        assert!(s.starts_with(HEADER));
        let t2 = tree_from_str(&s).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# a comment\n2\n\n# another\n-1 0 3 1\n0 0 4 2\n";
        let t = tree_from_str(text).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.output(NodeId(1)), 4);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(matches!(tree_from_str(""), Err(TreeError::Parse { .. })));
        assert!(matches!(tree_from_str("abc"), Err(TreeError::Parse { .. })));
        assert!(matches!(
            tree_from_str("2\n-1 0 3 1\n"),
            Err(TreeError::Parse { .. })
        ));
        assert!(matches!(
            tree_from_str("1\n-1 0 3\n"),
            Err(TreeError::Parse { .. })
        ));
        assert!(matches!(
            tree_from_str("1\n-1 x 3 1\n"),
            Err(TreeError::Parse { .. })
        ));
    }

    #[test]
    fn trailing_data_after_the_node_count_is_rejected() {
        // One declared node, two node lines: the classic concatenated-file
        // / wrong-count corruption. Must be a parse error, not a silently
        // truncated tree.
        let err = tree_from_str("1\n-1 0 3 1\n0 0 4 2\n").unwrap_err();
        match err {
            TreeError::Parse { line, msg } => {
                assert_eq!(line, 3);
                assert!(msg.contains("after the declared 1 node lines"), "{msg}");
            }
            other => panic!("expected Parse, got {other}"),
        }
        // Two concatenated well-formed documents are rejected too.
        let doc = tree_to_string(&sample());
        let twice = format!("{doc}{doc}");
        assert!(matches!(
            tree_from_str(&twice),
            Err(TreeError::Parse { .. })
        ));
        // Trailing comments and blank lines stay legal.
        let t = tree_from_str("1\n-1 0 3 1\n\n# trailing comment\n\n").unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn extra_fields_on_a_node_line_are_rejected() {
        let err = tree_from_str("1\n-1 0 3 1 99\n").unwrap_err();
        match err {
            TreeError::Parse { line, msg } => {
                assert_eq!(line, 2);
                assert!(msg.contains("extra field"), "{msg}");
                assert!(msg.contains("99"), "{msg}");
            }
            other => panic!("expected Parse, got {other}"),
        }
    }

    #[test]
    fn off_by_one_node_count_is_rejected_both_ways() {
        // Count says 2, input has 1: missing-line error (pre-existing).
        assert!(matches!(
            tree_from_str("2\n-1 0 3 1\n"),
            Err(TreeError::Parse { .. })
        ));
        // Count says 1, input has 2: trailing-data error (the fixed half).
        assert!(matches!(
            tree_from_str("1\n-1 0 3 1\n0 0 4 2\n"),
            Err(TreeError::Parse { .. })
        ));
    }

    #[test]
    fn file_errors_name_the_offending_path() {
        let dir = std::env::temp_dir().join("memtree-io-path-test");
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("does-not-exist.tree");
        let err = load_tree(&missing).unwrap_err();
        assert!(
            err.to_string().contains("does-not-exist.tree"),
            "load error must name the path: {err}"
        );
        // A parse failure inside an existing file names it too.
        let corrupt = dir.join("corrupt.tree");
        std::fs::write(&corrupt, "1\n-1 0 3 1 extra\n").unwrap();
        let err = load_tree(&corrupt).unwrap_err();
        assert!(matches!(err, TreeError::Parse { .. }), "got {err}");
        assert!(
            err.to_string().contains("corrupt.tree"),
            "parse error must name the path: {err}"
        );
        // Writing into a missing directory names the target path.
        let unwritable = dir.join("no-such-dir").join("out.tree");
        let err = save_tree(&sample(), &unwritable).unwrap_err();
        assert!(
            err.to_string().contains("out.tree"),
            "save error must name the path: {err}"
        );
        std::fs::remove_file(&corrupt).ok();
    }

    #[test]
    fn structural_errors_surface() {
        // Two roots.
        let text = "2\n-1 0 3 1\n-1 0 4 2\n";
        assert!(matches!(
            tree_from_str(text),
            Err(TreeError::MultipleRoots(..))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let t = sample();
        let dir = std::env::temp_dir().join("memtree-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.tree");
        save_tree(&t, &path).unwrap();
        let t2 = load_tree(&path).unwrap();
        assert_eq!(t, t2);
        std::fs::remove_file(&path).ok();
    }
}

/// Renders `tree` in Graphviz DOT format, one node per task labelled with
/// its sizes, edges from child to parent (the data-flow direction).
///
/// Node fill encodes relative output size so memory hot-spots stand out
/// when rendered with `dot -Tsvg`.
pub fn tree_to_dot(tree: &TaskTree) -> String {
    use std::fmt::Write as _;
    let max_f = tree
        .nodes()
        .map(|i| tree.output(i))
        .max()
        .unwrap_or(1)
        .max(1);
    let mut out = String::with_capacity(tree.len() * 64);
    out.push_str("digraph memtree {\n  rankdir=BT;\n  node [shape=box, style=filled];\n");
    for i in tree.nodes() {
        let s = tree.spec(i);
        // Grey level by output share: big outputs are darker.
        let level = 95 - (55 * tree.output(i) / max_f) as u8;
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\\nn={} f={} t={}\", fillcolor=\"gray{}\"];",
            i, i, s.exec, s.output, s.time, level
        );
    }
    for i in tree.nodes() {
        if let Some(p) = tree.parent(i) {
            let _ = writeln!(out, "  n{i} -> n{p};");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use crate::node::TaskSpec;

    #[test]
    fn dot_output_structure() {
        let t = TaskTree::from_parents(
            &[None, Some(0), Some(0)],
            &[
                TaskSpec::new(0, 1, 1.0),
                TaskSpec::new(2, 9, 1.0),
                TaskSpec::new(0, 3, 1.0),
            ],
        )
        .unwrap();
        let dot = tree_to_dot(&t);
        assert!(dot.starts_with("digraph memtree {"));
        assert!(dot.trim_end().ends_with('}'));
        // One node statement per task, one edge per non-root.
        assert_eq!(dot.matches("label=").count(), 3);
        assert_eq!(dot.matches("->").count(), 2);
        assert!(dot.contains("n1 -> n0;"));
        // The biggest output is the darkest node (gray40).
        assert!(dot.contains("fillcolor=\"gray40\""));
    }
}
