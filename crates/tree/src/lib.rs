#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Task-tree data model for memory-aware tree scheduling.
//!
//! This crate provides the application model of Aupy, Brasseur and Marchal,
//! *Dynamic memory-aware task-tree scheduling* (IPDPS 2017): a rooted
//! **in-tree** whose vertices are sequential tasks and whose edges carry the
//! data produced by a child and consumed by its parent.
//!
//! Each task `i` is described by three quantities:
//!
//! * `n_i` — the size of its *execution data*, alive only while `i` runs,
//! * `f_i` — the size of its *output data*, alive from the completion of `i`
//!   until the completion of `parent(i)` (the root's output survives until
//!   the whole tree is done),
//! * `t_i` — its processing time.
//!
//! The memory needed to run task `i` is
//! `MemNeeded(i) = Σ_{j ∈ children(i)} f_j + n_i + f_i` (Equation (1) of the
//! paper); see [`TaskTree::mem_needed`].
//!
//! The central type is [`TaskTree`], an immutable, cache-friendly CSR
//! representation built through [`TreeBuilder`] or the convenience
//! constructors. Structural statistics (heights, levels, critical paths) live
//! in [`stats`], the sequential-memory semantics in [`memory`], traversal
//! iterators in [`traverse`], a plain-text serialisation format in [`io`],
//! canonical content hashing (the basis of sweep-level result caching)
//! in [`hash`] and forest partitioning for sharded execution (disjoint
//! shard subtrees plus a residual merge tree) in [`partition`].
//!
//! All algorithms in this crate are iterative, never recursive: assembly
//! trees of sparse factorizations routinely reach heights of 10⁵, which
//! would overflow any thread stack.

pub mod bitset;
pub mod builder;
pub mod error;
pub mod hash;
pub mod io;
pub mod memory;
pub mod node;
pub mod partition;
pub mod stats;
pub mod traverse;
pub mod tree;
pub mod validate;

pub use bitset::BitSet;
pub use builder::TreeBuilder;
pub use error::TreeError;
pub use hash::Fnv64;
pub use memory::{mem_needed_slice, LiveSet, SequentialProfile};
pub use node::{NodeId, TaskSpec};
pub use partition::{partition, Partition, PartitionPolicy, ResidualPart, ShardPart};
pub use stats::TreeStats;
pub use traverse::{BfsIter, PostorderIter};
pub use tree::TaskTree;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TreeError>;
