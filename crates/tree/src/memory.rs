//! Memory semantics: what is resident when, and sequential peak evaluation.
//!
//! The model (Section 2 of the paper): while task `i` runs, its inputs
//! (children outputs), execution data `n_i` and output `f_i` are resident.
//! When `i` completes, inputs and execution data are freed; the output stays
//! resident until `parent(i)` completes (the root's output stays forever).

use crate::node::NodeId;
use crate::tree::TaskTree;
use crate::Result;

/// `MemNeeded(i)` for every node, as a dense array.
pub fn mem_needed_slice(tree: &TaskTree) -> Vec<u64> {
    tree.nodes().map(|i| tree.mem_needed(i)).collect()
}

/// Incremental tracker of the **actual** resident memory of an execution.
///
/// Drive it with [`LiveSet::start`] / [`LiveSet::finish`] as tasks begin and
/// end (in any interleaving respecting precedence); [`LiveSet::current`]
/// reports the resident bytes, and [`LiveSet::peak`] the running maximum.
/// This is the ground truth the simulator validates schedules against.
#[derive(Clone, Debug)]
pub struct LiveSet<'a> {
    tree: &'a TaskTree,
    /// Outputs currently resident (produced, parent not completed).
    live_outputs: u64,
    /// Σ (n_i + f_i) over currently running tasks.
    running_extra: u64,
    /// Whether each node's output is currently resident.
    output_live: Vec<bool>,
    peak: u64,
}

impl<'a> LiveSet<'a> {
    /// An empty memory state for `tree`.
    pub fn new(tree: &'a TaskTree) -> Self {
        LiveSet {
            tree,
            live_outputs: 0,
            running_extra: 0,
            output_live: vec![false; tree.len()],
            peak: 0,
        }
    }

    /// Registers the start of task `i`. Panics (debug) if a child output is
    /// missing — that would be a precedence violation.
    pub fn start(&mut self, i: NodeId) {
        #[cfg(debug_assertions)]
        for &c in self.tree.children(i) {
            debug_assert!(
                self.output_live[c.index()],
                "starting {i:?} before child {c:?} completed"
            );
        }
        self.running_extra += self.tree.exec(i) + self.tree.output(i);
        self.bump();
    }

    /// Registers the completion of task `i`: frees its inputs and execution
    /// data, keeps its output resident.
    pub fn finish(&mut self, i: NodeId) {
        self.running_extra -= self.tree.exec(i) + self.tree.output(i);
        for &c in self.tree.children(i) {
            debug_assert!(self.output_live[c.index()]);
            self.output_live[c.index()] = false;
            self.live_outputs -= self.tree.output(c);
        }
        self.output_live[i.index()] = true;
        self.live_outputs += self.tree.output(i);
        self.bump();
    }

    /// Resident memory right now.
    #[inline]
    pub fn current(&self) -> u64 {
        self.live_outputs + self.running_extra
    }

    /// Largest value [`LiveSet::current`] has reached.
    #[inline]
    pub fn peak(&self) -> u64 {
        self.peak
    }

    #[inline]
    fn bump(&mut self) {
        self.peak = self.peak.max(self.current());
    }
}

/// One step of a sequential execution profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProfileStep {
    /// The task processed at this step.
    pub node: NodeId,
    /// Resident memory while the task runs (its peak contribution).
    pub during: u64,
    /// Resident memory right after the task completes.
    pub after: u64,
}

/// The full memory profile of a sequential traversal.
#[derive(Clone, Debug)]
pub struct SequentialProfile {
    /// Per-task peaks and residuals, in execution order.
    pub steps: Vec<ProfileStep>,
    /// Peak over the whole traversal.
    pub peak: u64,
}

impl SequentialProfile {
    /// Memory resident at the very end (the root's output).
    pub fn final_memory(&self) -> u64 {
        self.steps.last().map_or(0, |s| s.after)
    }
}

/// Computes the memory profile of executing `order` sequentially.
///
/// `order` must be a topological order of `tree` (children first); this is
/// checked and [`crate::TreeError::NotTopological`] is returned otherwise.
pub fn sequential_profile(tree: &TaskTree, order: &[NodeId]) -> Result<SequentialProfile> {
    tree.check_topological(order)?;
    let mut live = LiveSet::new(tree);
    let mut steps = Vec::with_capacity(order.len());
    for &i in order {
        live.start(i);
        let during = live.current();
        live.finish(i);
        steps.push(ProfileStep {
            node: i,
            during,
            after: live.current(),
        });
    }
    Ok(SequentialProfile {
        steps,
        peak: live.peak(),
    })
}

/// Peak memory of executing `order` sequentially.
///
/// This is the quantity the paper normalises memory bounds by: the minimum
/// feasible `M` for the one-processor schedule following `order`.
pub fn sequential_peak(tree: &TaskTree, order: &[NodeId]) -> Result<u64> {
    Ok(sequential_profile(tree, order)?.peak)
}

/// The average memory of a sequential traversal (Appendix A):
/// `(1/Cmax) ∫ mem(t) dt`, where memory during task `i` counts for `t_i`
/// time units. Tasks with `t_i = 0` contribute nothing.
pub fn sequential_average_memory(tree: &TaskTree, order: &[NodeId]) -> Result<f64> {
    let profile = sequential_profile(tree, order)?;
    let mut weighted = 0f64;
    let mut total_time = 0f64;
    for s in &profile.steps {
        let t = tree.time(s.node);
        weighted += s.during as f64 * t;
        total_time += t;
    }
    if total_time == 0.0 {
        return Ok(0.0);
    }
    Ok(weighted / total_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::TreeError;
    use crate::node::TaskSpec;
    use crate::traverse::postorder;

    /// Chain 0 <- 1 <- 2 with distinctive sizes.
    fn chain() -> TaskTree {
        TaskTree::from_parents(
            &[None, Some(0), Some(1)],
            &[
                TaskSpec::new(1, 10, 1.0), // root
                TaskSpec::new(2, 20, 1.0),
                TaskSpec::new(3, 30, 1.0), // leaf
            ],
        )
        .unwrap()
    }

    #[test]
    fn chain_profile_by_hand() {
        let t = chain();
        let order = [NodeId(2), NodeId(1), NodeId(0)];
        let p = sequential_profile(&t, &order).unwrap();
        // Leaf 2: during = n + f = 33, after = 30.
        assert_eq!(
            p.steps[0],
            ProfileStep {
                node: NodeId(2),
                during: 33,
                after: 30
            }
        );
        // Node 1: during = 30 (input) + 2 + 20 = 52, after = 20.
        assert_eq!(
            p.steps[1],
            ProfileStep {
                node: NodeId(1),
                during: 52,
                after: 20
            }
        );
        // Root: during = 20 + 1 + 10 = 31, after = 10 (root output stays).
        assert_eq!(
            p.steps[2],
            ProfileStep {
                node: NodeId(0),
                during: 31,
                after: 10
            }
        );
        assert_eq!(p.peak, 52);
        assert_eq!(p.final_memory(), 10);
        assert_eq!(sequential_peak(&t, &order).unwrap(), 52);
    }

    #[test]
    fn peak_matches_max_of_mem_needed_on_chain() {
        // On a chain, the sequential peak is exactly max MemNeeded.
        let t = chain();
        let order = postorder(&t);
        let needed = mem_needed_slice(&t);
        assert_eq!(
            sequential_peak(&t, &order).unwrap(),
            needed.into_iter().max().unwrap()
        );
    }

    #[test]
    fn fork_profile_accumulates_sibling_outputs() {
        // Root 0 with two leaf children 1, 2 (f = 5 and 7).
        let t = TaskTree::from_parents(
            &[None, Some(0), Some(0)],
            &[
                TaskSpec::new(0, 1, 1.0),
                TaskSpec::new(0, 5, 1.0),
                TaskSpec::new(0, 7, 1.0),
            ],
        )
        .unwrap();
        let p = sequential_profile(&t, &[NodeId(1), NodeId(2), NodeId(0)]).unwrap();
        assert_eq!(p.steps[0].during, 5);
        // While 2 runs, 1's output is live: 5 + 7 = 12.
        assert_eq!(p.steps[1].during, 12);
        // Root: 5 + 7 + 0 + 1 = 13.
        assert_eq!(p.steps[2].during, 13);
        assert_eq!(p.peak, 13);
    }

    #[test]
    fn non_topological_order_rejected() {
        let t = chain();
        let bad = [NodeId(0), NodeId(1), NodeId(2)];
        assert!(matches!(
            sequential_profile(&t, &bad),
            Err(TreeError::NotTopological { .. })
        ));
    }

    #[test]
    fn live_set_tracks_parallel_interleaving() {
        // Two independent leaves running at once.
        let t = TaskTree::from_parents(
            &[None, Some(0), Some(0)],
            &[
                TaskSpec::new(0, 1, 1.0),
                TaskSpec::new(2, 5, 1.0),
                TaskSpec::new(3, 7, 1.0),
            ],
        )
        .unwrap();
        let mut ls = LiveSet::new(&t);
        ls.start(NodeId(1));
        ls.start(NodeId(2));
        assert_eq!(ls.current(), (2 + 5) + (3 + 7));
        ls.finish(NodeId(1));
        assert_eq!(ls.current(), 5 + 10);
        ls.finish(NodeId(2));
        assert_eq!(ls.current(), 5 + 7);
        ls.start(NodeId(0));
        ls.finish(NodeId(0));
        assert_eq!(ls.current(), 1, "only the root output remains");
        assert_eq!(ls.peak(), 17);
    }

    #[test]
    fn average_memory_weights_by_time() {
        let t = TaskTree::from_parents(
            &[None, Some(0)],
            &[TaskSpec::new(0, 1, 3.0), TaskSpec::new(0, 10, 1.0)],
        )
        .unwrap();
        let avg = sequential_average_memory(&t, &[NodeId(1), NodeId(0)]).unwrap();
        // Step leaf: during 10 for 1 unit; root: during 10 + 1 = 11 for 3 units.
        assert!((avg - (10.0 + 33.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_total_time_average_is_zero() {
        let t = TaskTree::from_parents(&[None], &[TaskSpec::new(0, 1, 0.0)]).unwrap();
        assert_eq!(sequential_average_memory(&t, &[NodeId(0)]).unwrap(), 0.0);
    }
}
