//! Node identifiers and per-task descriptions.

use std::fmt;

/// Identifier of a task in a [`crate::TaskTree`].
///
/// Node ids are dense indices `0..n` assigned in insertion order by the
/// [`crate::TreeBuilder`]. They are stored as `u32` — task trees from sparse
/// factorizations stay well below 2³² nodes while the narrower index keeps
/// the hot scheduler arrays compact.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize`, for indexing per-node arrays.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a dense array index.
    #[inline(always)]
    pub fn from_index(ix: usize) -> Self {
        debug_assert!(ix <= u32::MAX as usize, "node index overflows u32");
        NodeId(ix as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<NodeId> for usize {
    #[inline]
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

/// The data sizes and processing time of one task.
///
/// * `exec` — `n_i`, execution data, allocated only while the task runs;
/// * `output` — `f_i`, output data, allocated from the task's completion to
///   its parent's completion;
/// * `time` — `t_i`, processing time (arbitrary unit; must be finite and
///   non-negative).
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaskSpec {
    /// Execution data size `n_i`.
    pub exec: u64,
    /// Output data size `f_i`.
    pub output: u64,
    /// Processing time `t_i`.
    pub time: f64,
}

impl TaskSpec {
    /// A task with the given sizes and time.
    pub fn new(exec: u64, output: u64, time: f64) -> Self {
        TaskSpec { exec, output, time }
    }

    /// A task that only produces output data (`n_i = 0`), as in reduction
    /// trees.
    pub fn reduction(output: u64, time: f64) -> Self {
        TaskSpec {
            exec: 0,
            output,
            time,
        }
    }
}

impl Default for TaskSpec {
    fn default() -> Self {
        TaskSpec {
            exec: 0,
            output: 1,
            time: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
        assert_eq!(format!("{id}"), "42");
        assert_eq!(format!("{id:?}"), "n42");
    }

    #[test]
    fn node_id_ordering_follows_index() {
        assert!(NodeId(3) < NodeId(5));
        assert_eq!(NodeId(7), NodeId(7));
    }

    #[test]
    fn task_spec_constructors() {
        let t = TaskSpec::new(3, 4, 1.5);
        assert_eq!((t.exec, t.output), (3, 4));
        let r = TaskSpec::reduction(9, 2.0);
        assert_eq!(r.exec, 0);
        assert_eq!(r.output, 9);
    }
}
