//! Forest partitioning: cut a [`TaskTree`] at subtree-weight frontiers
//! into disjoint **shard** subtrees plus a **residual** merge tree
//! (DESIGN.md §6.7).
//!
//! A sharded platform splits one tree across workers the way Eyraud-Dubois
//! et al. (2014) parallelise independent subtrees: each shard is a whole
//! subtree whose root's parent stays behind in the residual tree, so the
//! only cross-shard dependency is "shard finished → its output is an input
//! of the residual". The cut heuristic is a linear leaf-up sweep: walking
//! the tree in postorder, the first untainted node whose subtree reaches
//! the target weight (`⌈n / shards⌉ nodes`) becomes a shard root and
//! taints its ancestors, which naturally cuts just below high fan-out
//! nodes — the children of a bushy node are the heaviest disjoint
//! subtrees available. A chain yields at most one shard (its subtrees are
//! all nested); that is structural, not a heuristic failure.
//!
//! The partition is **lossless**: every global node lands in exactly one
//! shard or the residual tree, each part is a real [`TaskTree`] in its own
//! compact id space with a recorded local→global mapping, and
//! [`Partition::stitch`] rebuilds a tree that is `content_hash`-equal to
//! the original — the property the partitioner proptests pin down. In the
//! residual tree every shard is represented by a **proxy leaf** (`n = 0`,
//! `t = 0`, `f =` the shard root's output) attached to the shard root's
//! original parent, so the residual tree's memory semantics account for
//! the shard outputs exactly as the original tree did.
//!
//! Partitioning is deterministic: the same tree and policy always produce
//! byte-identical parts (shard trees hash stably), which sharded result
//! caching relies on.

use crate::node::{NodeId, TaskSpec};
use crate::traverse::PostorderIter;
use crate::tree::TaskTree;

/// Shard-assignment sentinel: the node stays in the residual tree.
pub const RESIDUAL: u32 = u32::MAX;

/// How aggressively to cut a tree into shards.
#[derive(Clone, Copy, Debug)]
pub struct PartitionPolicy {
    /// Maximum number of shards to cut (the partitioner may produce fewer
    /// when the structure does not admit that many disjoint subtrees).
    pub shards: usize,
    /// Smallest subtree (in nodes) worth shipping to a worker; subtrees
    /// below this never become shards.
    pub min_shard_nodes: usize,
}

impl PartitionPolicy {
    /// Up to `shards` shards of roughly `n / shards` nodes each.
    pub fn balanced(shards: usize) -> Self {
        PartitionPolicy {
            shards,
            min_shard_nodes: 2,
        }
    }
}

/// One shard: a whole subtree of the original tree, re-indexed into its
/// own compact id space.
#[derive(Clone, Debug)]
pub struct ShardPart {
    /// The shard subtree (local ids `0..tree.len()`).
    pub tree: TaskTree,
    /// Local id → original global id; ascending (locals preserve the
    /// global relative order, so children stay id-sorted).
    pub to_global: Vec<NodeId>,
    /// Global id of the shard root's parent — always a residual node.
    pub attach: NodeId,
}

impl ShardPart {
    /// Global id of the shard's root.
    pub fn root_global(&self) -> NodeId {
        self.to_global[self.tree.root().index()]
    }
}

/// The residual merge tree: everything not in a shard, plus one proxy
/// leaf per shard standing in for the shard's output.
#[derive(Clone, Debug)]
pub struct ResidualPart {
    /// The residual tree (real nodes first, proxy leaves last).
    pub tree: TaskTree,
    /// Local id → original global id for real nodes, `None` for proxies.
    pub origin: Vec<Option<NodeId>>,
    /// Local id of shard `k`'s proxy leaf, indexed by shard.
    pub proxies: Vec<NodeId>,
}

/// A [`TaskTree`] cut into shard subtrees plus a residual merge tree.
#[derive(Clone, Debug)]
pub struct Partition {
    /// The shard subtrees, ordered by ascending global root id.
    pub shards: Vec<ShardPart>,
    /// The residual merge tree.
    pub residual: ResidualPart,
    /// Per-global-node home: the shard index, or [`RESIDUAL`].
    pub assignment: Vec<u32>,
}

impl Partition {
    /// Number of shards actually cut.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total nodes across all parts, proxies excluded — always the
    /// original tree's length.
    pub fn node_count(&self) -> usize {
        self.assignment.len()
    }

    /// Reassembles the original tree from the parts alone (shard trees,
    /// mappings, attachment points, residual tree) — no reference to the
    /// source tree. The result is `content_hash`-equal to the original,
    /// proving the partition loses nothing.
    pub fn stitch(&self) -> TaskTree {
        let n = self.assignment.len();
        let mut parents: Vec<Option<usize>> = vec![None; n];
        let mut specs: Vec<TaskSpec> = vec![TaskSpec::default(); n];
        for (local, origin) in self.residual.origin.iter().enumerate() {
            let Some(g) = *origin else { continue };
            let local_id = NodeId::from_index(local);
            // A real residual node's parent is real too (proxies are
            // leaves), so the unwrap on its origin is safe.
            parents[g.index()] = self.residual.tree.parent(local_id).map(|p| {
                self.residual.origin[p.index()]
                    .expect("parent is real")
                    .index()
            });
            specs[g.index()] = self.residual.tree.spec(local_id);
        }
        for shard in &self.shards {
            for local in shard.tree.nodes() {
                let g = shard.to_global[local.index()];
                parents[g.index()] = match shard.tree.parent(local) {
                    Some(p) => Some(shard.to_global[p.index()].index()),
                    None => Some(shard.attach.index()),
                };
                specs[g.index()] = shard.tree.spec(local);
            }
        }
        TaskTree::from_parents(&parents, &specs).expect("stitched parts form the original tree")
    }
}

/// Extracts the subtree rooted at `root` into its own compact tree.
fn extract_subtree(tree: &TaskTree, root: NodeId) -> (TaskTree, Vec<NodeId>) {
    let mut to_global: Vec<NodeId> = PostorderIter::rooted(tree, root).collect();
    to_global.sort_unstable();
    let mut local_of = std::collections::HashMap::with_capacity(to_global.len());
    for (local, &g) in to_global.iter().enumerate() {
        local_of.insert(g, local);
    }
    let parents: Vec<Option<usize>> = to_global
        .iter()
        .map(|&g| {
            if g == root {
                None
            } else {
                Some(local_of[&tree.parent(g).expect("non-root has a parent")])
            }
        })
        .collect();
    let specs: Vec<TaskSpec> = to_global.iter().map(|&g| tree.spec(g)).collect();
    let sub = TaskTree::from_parents(&parents, &specs).expect("subtree is a valid tree");
    (sub, to_global)
}

/// Cuts `tree` into up to `policy.shards` disjoint shard subtrees plus a
/// residual merge tree; see the module docs for the heuristic and the
/// invariants.
pub fn partition(tree: &TaskTree, policy: &PartitionPolicy) -> Partition {
    let n = tree.len();
    let mut assignment = vec![RESIDUAL; n];
    let mut roots: Vec<NodeId> = Vec::new();

    if policy.shards >= 1 && n >= 2 {
        let mut size = vec![1u32; n];
        for i in PostorderIter::new(tree) {
            let ix = i.index();
            for &c in tree.children(i) {
                size[ix] += size[c.index()];
            }
        }
        // The per-shard target weight, clamped to the heaviest proper
        // subtree: when `n / shards` exceeds every cuttable subtree
        // (shards = 1, or a heavy root), the clamp keeps a cut possible
        // instead of silently degenerating to an all-residual partition.
        let max_proper = tree
            .nodes()
            .filter(|&i| i != tree.root())
            .map(|i| size[i.index()] as usize)
            .max()
            .unwrap_or(0);
        let target = (n / policy.shards)
            .min(max_proper)
            .max(policy.min_shard_nodes.max(1));
        // Leaf-up sweep: a node whose untainted subtree reaches the
        // target becomes a shard root and taints its ancestors (shards
        // are whole, disjoint subtrees).
        let mut tainted = vec![false; n];
        for i in PostorderIter::new(tree) {
            let ix = i.index();
            for &c in tree.children(i) {
                tainted[ix] |= tainted[c.index()];
            }
            if i != tree.root()
                && !tainted[ix]
                && (size[ix] as usize) >= target
                && roots.len() < policy.shards
            {
                roots.push(i);
                tainted[ix] = true;
            }
        }
        // Canonical shard order: ascending global root id, independent of
        // traversal order.
        roots.sort_unstable();
        for (k, &r) in roots.iter().enumerate() {
            for i in PostorderIter::rooted(tree, r) {
                assignment[i.index()] = k as u32;
            }
        }
    }

    let shards: Vec<ShardPart> = roots
        .iter()
        .map(|&r| {
            let (sub, to_global) = extract_subtree(tree, r);
            ShardPart {
                tree: sub,
                to_global,
                attach: tree.parent(r).expect("shard roots are never the tree root"),
            }
        })
        .collect();

    // Residual: real nodes in ascending global id, then one proxy leaf
    // per shard carrying the shard root's output size.
    let mut local_of = vec![usize::MAX; n];
    let mut origin: Vec<Option<NodeId>> = Vec::new();
    for i in tree.nodes() {
        if assignment[i.index()] == RESIDUAL {
            local_of[i.index()] = origin.len();
            origin.push(Some(i));
        }
    }
    let real = origin.len();
    let mut parents: Vec<Option<usize>> = origin
        .iter()
        .map(|g| {
            tree.parent(g.expect("real node"))
                .map(|p| local_of[p.index()])
        })
        .collect();
    let mut specs: Vec<TaskSpec> = origin
        .iter()
        .map(|g| tree.spec(g.expect("real node")))
        .collect();
    let mut proxies = Vec::with_capacity(shards.len());
    for shard in &shards {
        proxies.push(NodeId::from_index(origin.len()));
        origin.push(None);
        parents.push(Some(local_of[shard.attach.index()]));
        specs.push(TaskSpec::new(0, tree.output(shard.root_global()), 0.0));
    }
    debug_assert_eq!(real + shards.len(), origin.len());
    let residual_tree = TaskTree::from_parents(&parents, &specs).expect("residual is a valid tree");

    Partition {
        shards,
        residual: ResidualPart {
            tree: residual_tree,
            origin,
            proxies,
        },
        assignment,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::TaskSpec;

    fn star_of_chains(lens: &[usize]) -> TaskTree {
        let mut parents: Vec<Option<usize>> = vec![None];
        let mut specs = vec![TaskSpec::new(1, 2, 1.0)];
        for &len in lens {
            let mut prev = 0usize; // attach each chain under the root
            for k in 0..len {
                parents.push(Some(prev));
                specs.push(TaskSpec::new(1, 2 + k as u64, 1.0));
                prev = parents.len() - 1;
            }
        }
        TaskTree::from_parents(&parents, &specs).unwrap()
    }

    #[test]
    fn star_splits_into_per_chain_shards() {
        let tree = star_of_chains(&[10, 10, 10, 10]);
        let part = partition(&tree, &PartitionPolicy::balanced(4));
        assert_eq!(part.shard_count(), 4);
        for shard in &part.shards {
            assert_eq!(shard.tree.len(), 10);
            assert_eq!(shard.attach, tree.root());
        }
        // Residual: the root plus one proxy per shard.
        assert_eq!(part.residual.tree.len(), 1 + 4);
        assert_eq!(part.residual.proxies.len(), 4);
        for (k, &p) in part.residual.proxies.iter().enumerate() {
            assert!(part.residual.tree.is_leaf(p));
            assert_eq!(part.residual.tree.time(p), 0.0);
            assert_eq!(part.residual.tree.exec(p), 0);
            assert_eq!(
                part.residual.tree.output(p),
                tree.output(part.shards[k].root_global())
            );
        }
    }

    #[test]
    fn a_single_requested_shard_still_cuts() {
        // shards = 1 must not degenerate to an all-residual partition:
        // the target clamps to the heaviest proper subtree, so the first
        // chain becomes the one shard.
        let tree = star_of_chains(&[10, 10, 10, 10]);
        let part = partition(&tree, &PartitionPolicy::balanced(1));
        assert_eq!(part.shard_count(), 1);
        assert_eq!(part.shards[0].tree.len(), 10);
        assert_eq!(part.stitch().content_hash(), tree.content_hash());
    }

    #[test]
    fn chain_admits_at_most_one_shard() {
        let tree = crate::tree::TaskTree::from_parents(
            &[None, Some(0), Some(1), Some(2), Some(3), Some(4)],
            &[TaskSpec::new(1, 1, 1.0); 6],
        )
        .unwrap();
        let part = partition(&tree, &PartitionPolicy::balanced(4));
        assert!(part.shard_count() <= 1, "nested subtrees cannot both shard");
        assert_eq!(part.stitch().content_hash(), tree.content_hash());
    }

    #[test]
    fn stitch_restores_the_original_hash() {
        let tree = star_of_chains(&[7, 13, 5, 20, 3]);
        for shards in [1, 2, 4, 8] {
            let part = partition(&tree, &PartitionPolicy::balanced(shards));
            assert_eq!(
                part.stitch().content_hash(),
                tree.content_hash(),
                "{shards} shards"
            );
        }
    }

    #[test]
    fn partitioning_is_deterministic() {
        let tree = star_of_chains(&[9, 4, 17, 11]);
        let a = partition(&tree, &PartitionPolicy::balanced(3));
        let b = partition(&tree, &PartitionPolicy::balanced(3));
        assert_eq!(a.assignment, b.assignment);
        for (sa, sb) in a.shards.iter().zip(&b.shards) {
            assert_eq!(sa.tree.content_hash(), sb.tree.content_hash());
        }
        assert_eq!(
            a.residual.tree.content_hash(),
            b.residual.tree.content_hash()
        );
    }

    #[test]
    fn tiny_trees_stay_whole() {
        let tree = TaskTree::from_parents(&[None], &[TaskSpec::new(1, 1, 1.0)]).unwrap();
        let part = partition(&tree, &PartitionPolicy::balanced(8));
        assert_eq!(part.shard_count(), 0);
        assert_eq!(part.residual.tree.len(), 1);
        assert_eq!(part.stitch().content_hash(), tree.content_hash());
    }
}
