//! Structural statistics of task trees.

use crate::node::NodeId;
use crate::traverse::{depths, postorder, BfsIter};
use crate::tree::TaskTree;

/// Precomputed structural statistics of a [`TaskTree`].
///
/// The paper characterises its corpora by node count, height and maximum
/// degree, and its orders rely on subtree totals (`T_i`), critical paths and
/// bottom levels; this struct computes all of them in two linear passes.
#[derive(Clone, Debug)]
pub struct TreeStats {
    /// Depth of each node; the root has depth 0.
    pub depth: Vec<u32>,
    /// Number of nodes in each subtree (a leaf counts 1).
    pub subtree_size: Vec<u32>,
    /// Total processing time of each subtree: `T_i = Σ_{j ∈ subtree(i)} t_j`.
    pub subtree_time: Vec<f64>,
    /// Critical path of each subtree: the longest (in time) leaf-to-`i`
    /// path, **including** `t_i`.
    pub subtree_cp: Vec<f64>,
    /// Bottom level: sum of processing times on the unique path from the
    /// node to the root, including both endpoints. In an in-tree this is the
    /// remaining work on the node's path, the classical list-scheduling
    /// priority.
    pub bottom_level: Vec<f64>,
    /// Height of the tree: number of *edges* on the longest root-to-leaf
    /// path (a single node has height 0).
    pub height: u32,
    /// Maximum number of children over all nodes.
    pub max_degree: u32,
}

impl TreeStats {
    /// Computes all statistics for `tree`.
    pub fn compute(tree: &TaskTree) -> Self {
        let n = tree.len();
        let depth = depths(tree);
        let height = depth.iter().copied().max().unwrap_or(0);
        let max_degree = tree
            .nodes()
            .map(|i| tree.degree(i) as u32)
            .max()
            .unwrap_or(0);

        let mut subtree_size = vec![1u32; n];
        let mut subtree_time = vec![0f64; n];
        let mut subtree_cp = vec![0f64; n];
        for i in postorder(tree) {
            let ix = i.index();
            subtree_time[ix] += tree.time(i);
            let mut best_child_cp = 0f64;
            for &c in tree.children(i) {
                subtree_size[ix] += subtree_size[c.index()];
                subtree_time[ix] += subtree_time[c.index()];
                best_child_cp = best_child_cp.max(subtree_cp[c.index()]);
            }
            subtree_cp[ix] = tree.time(i) + best_child_cp;
        }

        let mut bottom_level = vec![0f64; n];
        for i in BfsIter::new(tree) {
            let base = tree.parent(i).map_or(0.0, |p| bottom_level[p.index()]);
            bottom_level[i.index()] = base + tree.time(i);
        }

        TreeStats {
            depth,
            subtree_size,
            subtree_time,
            subtree_cp,
            bottom_level,
            height,
            max_degree,
        }
    }

    /// Critical path of the whole tree (the classical makespan lower bound
    /// component): the heaviest leaf-to-root path.
    pub fn critical_path(&self, tree: &TaskTree) -> f64 {
        self.subtree_cp[tree.root().index()]
    }

    /// Whether node `a` has a strictly larger bottom level than `b`,
    /// breaking ties by depth (deeper first) then id. Using this as an
    /// execution priority yields the paper's `CP` order.
    pub fn cp_before(&self, a: NodeId, b: NodeId) -> std::cmp::Ordering {
        let (ia, ib) = (a.index(), b.index());
        self.bottom_level[ib]
            .partial_cmp(&self.bottom_level[ia])
            .unwrap()
            .then(self.depth[ib].cmp(&self.depth[ia]))
            .then(a.cmp(&b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::TaskSpec;

    fn sample() -> TaskTree {
        // 0 root (t=1); children 1 (t=2), 2 (t=3); 1 has children 3 (t=4), 4 (t=5).
        TaskTree::from_parents(
            &[None, Some(0), Some(0), Some(1), Some(1)],
            &[
                TaskSpec::new(0, 1, 1.0),
                TaskSpec::new(0, 1, 2.0),
                TaskSpec::new(0, 1, 3.0),
                TaskSpec::new(0, 1, 4.0),
                TaskSpec::new(0, 1, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn sizes_and_times() {
        let t = sample();
        let s = TreeStats::compute(&t);
        assert_eq!(s.subtree_size, vec![5, 3, 1, 1, 1]);
        assert_eq!(s.subtree_time[0], 15.0);
        assert_eq!(s.subtree_time[1], 11.0);
        assert_eq!(s.height, 2);
        assert_eq!(s.max_degree, 2);
    }

    #[test]
    fn critical_path_is_longest_leaf_root_path() {
        let t = sample();
        let s = TreeStats::compute(&t);
        // Longest path: 4 (5) -> 1 (2) -> 0 (1) = 8.
        assert_eq!(s.critical_path(&t), 8.0);
        assert_eq!(s.subtree_cp[1], 7.0);
    }

    #[test]
    fn bottom_levels_accumulate_to_root() {
        let t = sample();
        let s = TreeStats::compute(&t);
        assert_eq!(s.bottom_level[0], 1.0);
        assert_eq!(s.bottom_level[1], 3.0);
        assert_eq!(s.bottom_level[4], 8.0);
        // Deeper nodes on a path always have a larger-or-equal bottom level.
        for i in t.nodes() {
            if let Some(p) = t.parent(i) {
                assert!(s.bottom_level[i.index()] >= s.bottom_level[p.index()]);
            }
        }
    }

    #[test]
    fn cp_ordering_prefers_heavy_paths() {
        let t = sample();
        let s = TreeStats::compute(&t);
        // Node 4 (bl = 8) before node 3 (bl = 7) before node 2 (bl = 4).
        assert_eq!(s.cp_before(NodeId(4), NodeId(3)), std::cmp::Ordering::Less);
        assert_eq!(s.cp_before(NodeId(3), NodeId(2)), std::cmp::Ordering::Less);
        assert_eq!(s.cp_before(NodeId(2), NodeId(2)), std::cmp::Ordering::Equal);
    }

    #[test]
    fn single_node_stats() {
        let t = TaskTree::from_parents(&[None], &[TaskSpec::new(0, 1, 2.5)]).unwrap();
        let s = TreeStats::compute(&t);
        assert_eq!(s.height, 0);
        assert_eq!(s.max_degree, 0);
        assert_eq!(s.critical_path(&t), 2.5);
    }
}
