//! Iterative traversal utilities.
//!
//! Everything here is stack-explicit: assembly trees can be 10⁵ deep, so
//! recursion is banned throughout the workspace.

use crate::node::NodeId;
use crate::tree::TaskTree;

/// Iterative postorder traversal (children before parents).
///
/// Children are visited in id order by default; see
/// [`postorder_with_child_order`] for custom child priorities.
pub struct PostorderIter<'a> {
    tree: &'a TaskTree,
    /// Stack of (node, next child rank to expand).
    stack: Vec<(NodeId, u32)>,
}

impl<'a> PostorderIter<'a> {
    /// Postorder over the whole tree.
    pub fn new(tree: &'a TaskTree) -> Self {
        Self::rooted(tree, tree.root())
    }

    /// Postorder over the subtree rooted at `root`.
    pub fn rooted(tree: &'a TaskTree, root: NodeId) -> Self {
        PostorderIter {
            tree,
            stack: vec![(root, 0)],
        }
    }
}

impl Iterator for PostorderIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            let &(node, next_child) = self.stack.last()?;
            let children = self.tree.children(node);
            if (next_child as usize) < children.len() {
                self.stack.last_mut().unwrap().1 += 1;
                self.stack.push((children[next_child as usize], 0));
            } else {
                self.stack.pop();
                return Some(node);
            }
        }
    }
}

/// Breadth-first traversal from the root.
pub struct BfsIter<'a> {
    tree: &'a TaskTree,
    queue: std::collections::VecDeque<NodeId>,
}

impl<'a> BfsIter<'a> {
    /// BFS over the whole tree.
    pub fn new(tree: &'a TaskTree) -> Self {
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(tree.root());
        BfsIter { tree, queue }
    }
}

impl Iterator for BfsIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let node = self.queue.pop_front()?;
        self.queue.extend(self.tree.children(node).iter().copied());
        Some(node)
    }
}

/// Postorder of the whole tree as a vector (children in id order).
pub fn postorder(tree: &TaskTree) -> Vec<NodeId> {
    PostorderIter::new(tree).collect()
}

/// Postorder where, at every node, children are expanded in the order given
/// by `child_rank`: smaller rank is visited first.
///
/// This is the workhorse behind all postorder-based activation orders
/// (memPO, perfPO, avgMemPO): each of them is "a postorder with a specific
/// child priority".
pub fn postorder_with_child_order(tree: &TaskTree, child_rank: &[u64]) -> Vec<NodeId> {
    assert_eq!(child_rank.len(), tree.len(), "one rank per node required");
    let mut out = Vec::with_capacity(tree.len());
    // Stack entries hold the node's children pre-sorted by rank.
    let mut stack: Vec<(NodeId, Vec<NodeId>, usize)> = Vec::new();
    let sorted_children = |n: NodeId| {
        let mut ch: Vec<NodeId> = tree.children(n).to_vec();
        // Stable sort: equal ranks keep id order, so the traversal is
        // deterministic.
        ch.sort_by_key(|c| child_rank[c.index()]);
        ch
    };
    stack.push((tree.root(), sorted_children(tree.root()), 0));
    while let Some(&mut (node, ref ch, ref mut next)) = stack.last_mut() {
        if *next < ch.len() {
            let c = ch[*next];
            *next += 1;
            stack.push((c, sorted_children(c), 0));
        } else {
            out.push(node);
            stack.pop();
        }
    }
    out
}

/// Depth of every node (root has depth 0).
pub fn depths(tree: &TaskTree) -> Vec<u32> {
    let mut d = vec![0u32; tree.len()];
    for i in BfsIter::new(tree) {
        if let Some(p) = tree.parent(i) {
            d[i.index()] = d[p.index()] + 1;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::TaskSpec;

    fn bushy() -> TaskTree {
        // 0 root; children 1, 2; 1 has children 3, 4; 2 has child 5.
        TaskTree::from_parents(
            &[None, Some(0), Some(0), Some(1), Some(1), Some(2)],
            &[TaskSpec::default(); 6],
        )
        .unwrap()
    }

    #[test]
    fn postorder_visits_children_first() {
        let t = bushy();
        let po = postorder(&t);
        assert_eq!(po.len(), t.len());
        t.check_topological(&po).unwrap();
        assert_eq!(*po.last().unwrap(), t.root());
        assert_eq!(
            po,
            vec![
                NodeId(3),
                NodeId(4),
                NodeId(1),
                NodeId(5),
                NodeId(2),
                NodeId(0)
            ]
        );
    }

    #[test]
    fn postorder_is_contiguous_per_subtree() {
        // A postorder must list each subtree as a contiguous block.
        let t = bushy();
        let po = postorder(&t);
        let pos: Vec<usize> = {
            let mut p = vec![0; t.len()];
            for (k, &n) in po.iter().enumerate() {
                p[n.index()] = k;
            }
            p
        };
        for i in t.nodes() {
            let sub: Vec<usize> = PostorderIter::rooted(&t, i)
                .map(|n| pos[n.index()])
                .collect();
            let min = *sub.iter().min().unwrap();
            let max = *sub.iter().max().unwrap();
            assert_eq!(max - min + 1, sub.len(), "subtree of {i:?} not contiguous");
        }
    }

    #[test]
    fn bfs_visits_by_level() {
        let t = bushy();
        let bfs: Vec<_> = BfsIter::new(&t).collect();
        assert_eq!(
            bfs,
            vec![
                NodeId(0),
                NodeId(1),
                NodeId(2),
                NodeId(3),
                NodeId(4),
                NodeId(5)
            ]
        );
    }

    #[test]
    fn custom_child_order_respected() {
        let t = bushy();
        // Make node 2's subtree come before node 1's.
        let mut rank = vec![0u64; t.len()];
        rank[1] = 10;
        rank[2] = 5;
        let po = postorder_with_child_order(&t, &rank);
        t.check_topological(&po).unwrap();
        assert_eq!(
            po,
            vec![
                NodeId(5),
                NodeId(2),
                NodeId(3),
                NodeId(4),
                NodeId(1),
                NodeId(0)
            ]
        );
    }

    #[test]
    fn depths_computed() {
        let t = bushy();
        assert_eq!(depths(&t), vec![0, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn deep_tree_traversal_is_iterative() {
        let n = 150_000;
        let parents: Vec<Option<usize>> =
            std::iter::once(None).chain((0..n - 1).map(Some)).collect();
        let t = TaskTree::from_parents(&parents, &vec![TaskSpec::default(); n]).unwrap();
        assert_eq!(postorder(&t).len(), n);
        assert_eq!(depths(&t)[n - 1], (n - 1) as u32);
    }
}
