//! The immutable CSR task-tree representation.

use crate::error::TreeError;
use crate::node::{NodeId, TaskSpec};
use crate::Result;

/// Sentinel parent value meaning "no parent" (the root).
pub(crate) const NO_PARENT: u32 = u32::MAX;

/// A rooted in-tree of sequential tasks.
///
/// Dependencies point toward the root: a task may start only once all of its
/// children have completed, and its children's outputs stay in memory until
/// it completes.
///
/// The structure is stored in compressed form: a parent array plus a CSR
/// (offsets + flat array) adjacency of children, with per-node data-size and
/// time arrays. All accessors are `O(1)`; children of a node are a
/// contiguous, id-sorted slice.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TaskTree {
    /// `parent[i]` is the parent of node `i`, `NO_PARENT` for the root.
    pub(crate) parent: Vec<u32>,
    /// CSR offsets into `children`; length `n + 1`.
    pub(crate) child_ptr: Vec<u32>,
    /// Flattened children lists, grouped per node, each group sorted by id.
    pub(crate) children: Vec<NodeId>,
    /// Execution data sizes `n_i`.
    pub(crate) exec: Vec<u64>,
    /// Output data sizes `f_i`.
    pub(crate) output: Vec<u64>,
    /// Processing times `t_i`.
    pub(crate) time: Vec<f64>,
    /// The unique root.
    pub(crate) root: NodeId,
}

impl TaskTree {
    /// Builds a tree from a parent array (`None` marks the root) and task
    /// descriptions. `parents.len()` must equal `specs.len()`.
    pub fn from_parents(parents: &[Option<usize>], specs: &[TaskSpec]) -> Result<Self> {
        assert_eq!(
            parents.len(),
            specs.len(),
            "parents and specs must have the same length"
        );
        let mut b = crate::builder::TreeBuilder::with_capacity(parents.len());
        for (ix, (&p, &s)) in parents.iter().zip(specs).enumerate() {
            let got = b.push(p.map(NodeId::from_index), s);
            debug_assert_eq!(got.index(), ix);
        }
        b.build()
    }

    /// Number of tasks in the tree.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the tree is empty. Built trees never are — this exists for
    /// API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The unique root of the tree.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The parent of `i`, or `None` for the root.
    #[inline]
    pub fn parent(&self, i: NodeId) -> Option<NodeId> {
        let p = self.parent[i.index()];
        (p != NO_PARENT).then_some(NodeId(p))
    }

    /// The children of `i`, sorted by id.
    #[inline]
    pub fn children(&self, i: NodeId) -> &[NodeId] {
        let lo = self.child_ptr[i.index()] as usize;
        let hi = self.child_ptr[i.index() + 1] as usize;
        &self.children[lo..hi]
    }

    /// Number of children of `i`.
    #[inline]
    pub fn degree(&self, i: NodeId) -> usize {
        (self.child_ptr[i.index() + 1] - self.child_ptr[i.index()]) as usize
    }

    /// Whether `i` is a leaf.
    #[inline]
    pub fn is_leaf(&self, i: NodeId) -> bool {
        self.degree(i) == 0
    }

    /// Execution data size `n_i`.
    #[inline]
    pub fn exec(&self, i: NodeId) -> u64 {
        self.exec[i.index()]
    }

    /// Output data size `f_i`.
    #[inline]
    pub fn output(&self, i: NodeId) -> u64 {
        self.output[i.index()]
    }

    /// Processing time `t_i`.
    #[inline]
    pub fn time(&self, i: NodeId) -> f64 {
        self.time[i.index()]
    }

    /// The full task description of `i`.
    #[inline]
    pub fn spec(&self, i: NodeId) -> TaskSpec {
        TaskSpec {
            exec: self.exec(i),
            output: self.output(i),
            time: self.time(i),
        }
    }

    /// Memory needed to process `i` (Equation (1) of the paper):
    /// `Σ_{j ∈ children(i)} f_j + n_i + f_i`.
    pub fn mem_needed(&self, i: NodeId) -> u64 {
        let inputs: u64 = self.children(i).iter().map(|&c| self.output(c)).sum();
        inputs + self.exec(i) + self.output(i)
    }

    /// Sum of the children's output sizes (the input data of `i`).
    pub fn input_size(&self, i: NodeId) -> u64 {
        self.children(i).iter().map(|&c| self.output(c)).sum()
    }

    /// Total processing time `Σ t_i`.
    pub fn total_time(&self) -> f64 {
        self.time.iter().sum()
    }

    /// Iterator over all node ids in index order.
    pub fn nodes(&self) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator + '_ {
        (0..self.len() as u32).map(NodeId)
    }

    /// Iterator over the leaves in index order.
    pub fn leaves(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|&i| self.is_leaf(i))
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaves().count()
    }

    /// Walks from `i` up to the root (inclusive on both ends).
    pub fn ancestors(&self, i: NodeId) -> AncestorIter<'_> {
        AncestorIter {
            tree: self,
            cur: Some(i),
        }
    }

    /// Whether `a` is an ancestor of `b` (a node is not its own ancestor).
    pub fn is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        let mut cur = self.parent(b);
        while let Some(p) = cur {
            if p == a {
                return true;
            }
            cur = self.parent(p);
        }
        false
    }

    /// Checks an order is a topological order (children before parents) and
    /// a permutation of the nodes.
    pub fn check_topological(&self, order: &[NodeId]) -> Result<()> {
        if order.len() != self.len() {
            return Err(TreeError::BadPermutation {
                expected: self.len(),
                got: order.len(),
            });
        }
        let mut seen = vec![false; self.len()];
        for &i in order {
            if i.index() >= self.len() || seen[i.index()] {
                return Err(TreeError::BadPermutation {
                    expected: self.len(),
                    got: order.len(),
                });
            }
            seen[i.index()] = true;
            for &c in self.children(i) {
                if !seen[c.index()] {
                    return Err(TreeError::NotTopological {
                        parent: i,
                        child: c,
                    });
                }
            }
        }
        Ok(())
    }

    /// Replaces every task description through `f(id, old) -> new`,
    /// preserving the structure. Useful to rescale corpora.
    pub fn map_specs(&self, mut f: impl FnMut(NodeId, TaskSpec) -> TaskSpec) -> TaskTree {
        let mut out = self.clone();
        for i in 0..self.len() {
            let id = NodeId::from_index(i);
            let s = f(id, self.spec(id));
            out.exec[i] = s.exec;
            out.output[i] = s.output;
            out.time[i] = s.time;
        }
        out
    }
}

/// Iterator over a node and its ancestors up to the root.
pub struct AncestorIter<'a> {
    tree: &'a TaskTree,
    cur: Option<NodeId>,
}

impl Iterator for AncestorIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.cur?;
        self.cur = self.tree.parent(cur);
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;

    /// The three-node chain `0 <- 1 <- 2` (2 is the leaf, 0 the root).
    fn chain3() -> TaskTree {
        let mut b = TreeBuilder::new();
        let r = b.push(None, TaskSpec::new(1, 10, 1.0));
        let m = b.push(Some(r), TaskSpec::new(2, 20, 2.0));
        let _l = b.push(Some(m), TaskSpec::new(3, 30, 3.0));
        b.build().unwrap()
    }

    /// Root 0 with children 1, 2; node 1 has children 3, 4.
    fn bushy() -> TaskTree {
        TaskTree::from_parents(
            &[None, Some(0), Some(0), Some(1), Some(1)],
            &[
                TaskSpec::new(0, 5, 1.0),
                TaskSpec::new(1, 6, 1.0),
                TaskSpec::new(2, 7, 1.0),
                TaskSpec::new(3, 8, 1.0),
                TaskSpec::new(4, 9, 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn basic_accessors() {
        let t = chain3();
        assert_eq!(t.len(), 3);
        assert_eq!(t.root(), NodeId(0));
        assert_eq!(t.parent(NodeId(0)), None);
        assert_eq!(t.parent(NodeId(2)), Some(NodeId(1)));
        assert_eq!(t.children(NodeId(0)), &[NodeId(1)]);
        assert!(t.is_leaf(NodeId(2)));
        assert!(!t.is_leaf(NodeId(1)));
        assert_eq!(t.exec(NodeId(1)), 2);
        assert_eq!(t.output(NodeId(2)), 30);
        assert_eq!(t.time(NodeId(0)), 1.0);
        assert_eq!(t.total_time(), 6.0);
    }

    #[test]
    fn mem_needed_matches_equation_1() {
        let t = bushy();
        // Node 1: children 3 (f=8) and 4 (f=9), n=1, f=6.
        assert_eq!(t.mem_needed(NodeId(1)), 8 + 9 + 1 + 6);
        // Leaf 3: n=3, f=8.
        assert_eq!(t.mem_needed(NodeId(3)), 3 + 8);
        // Root: children 1 (f=6) and 2 (f=7), n=0, f=5.
        assert_eq!(t.mem_needed(NodeId(0)), 6 + 7 + 5);
        assert_eq!(t.input_size(NodeId(0)), 13);
    }

    #[test]
    fn leaves_and_degrees() {
        let t = bushy();
        let leaves: Vec<_> = t.leaves().collect();
        assert_eq!(leaves, vec![NodeId(2), NodeId(3), NodeId(4)]);
        assert_eq!(t.leaf_count(), 3);
        assert_eq!(t.degree(NodeId(0)), 2);
        assert_eq!(t.degree(NodeId(1)), 2);
    }

    #[test]
    fn ancestors_walk_to_root() {
        let t = bushy();
        let anc: Vec<_> = t.ancestors(NodeId(4)).collect();
        assert_eq!(anc, vec![NodeId(4), NodeId(1), NodeId(0)]);
        assert!(t.is_ancestor(NodeId(0), NodeId(4)));
        assert!(t.is_ancestor(NodeId(1), NodeId(3)));
        assert!(!t.is_ancestor(NodeId(4), NodeId(1)));
        assert!(
            !t.is_ancestor(NodeId(4), NodeId(4)),
            "a node is not its own ancestor"
        );
    }

    #[test]
    fn topological_check_accepts_postorder_rejects_reverse() {
        let t = bushy();
        let ok = [NodeId(3), NodeId(4), NodeId(1), NodeId(2), NodeId(0)];
        t.check_topological(&ok).unwrap();
        let bad = [NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)];
        assert!(matches!(
            t.check_topological(&bad),
            Err(TreeError::NotTopological { .. })
        ));
        let short = [NodeId(0)];
        assert!(matches!(
            t.check_topological(&short),
            Err(TreeError::BadPermutation { .. })
        ));
        let dup = [NodeId(3), NodeId(3), NodeId(1), NodeId(2), NodeId(0)];
        assert!(t.check_topological(&dup).is_err());
    }

    #[test]
    fn map_specs_rescales() {
        let t = chain3();
        let t2 = t.map_specs(|_, mut s| {
            s.output *= 2;
            s
        });
        assert_eq!(t2.output(NodeId(2)), 60);
        assert_eq!(t2.exec(NodeId(2)), 3);
        assert_eq!(t2.parent(NodeId(2)), Some(NodeId(1)));
    }

    #[test]
    fn from_parents_matches_builder() {
        let a = chain3();
        let b = TaskTree::from_parents(
            &[None, Some(0), Some(1)],
            &[
                TaskSpec::new(1, 10, 1.0),
                TaskSpec::new(2, 20, 2.0),
                TaskSpec::new(3, 30, 3.0),
            ],
        )
        .unwrap();
        assert_eq!(a, b);
    }
}
