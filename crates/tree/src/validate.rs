//! Whole-tree consistency checks used by tests and debug assertions.

use crate::node::NodeId;
use crate::tree::TaskTree;

/// Exhaustively checks the internal CSR invariants of a built tree.
///
/// [`crate::TreeBuilder::build`] already guarantees these; this function is
/// the independent re-derivation used by property tests and by downstream
/// crates that transform trees (e.g. the reduction-tree transform).
pub fn check_consistency(tree: &TaskTree) -> Result<(), String> {
    let n = tree.len();
    if n == 0 {
        return Err("empty tree".into());
    }

    // Root is in range and has no parent.
    if tree.root().index() >= n {
        return Err("root out of range".into());
    }
    if tree.parent(tree.root()).is_some() {
        return Err("root has a parent".into());
    }

    // parent/children agree in both directions.
    for i in tree.nodes() {
        for &c in tree.children(i) {
            if tree.parent(c) != Some(i) {
                return Err(format!("child {c:?} of {i:?} disagrees on its parent"));
            }
        }
        if let Some(p) = tree.parent(i) {
            if !tree.children(p).contains(&i) {
                return Err(format!("{i:?} missing from children of {p:?}"));
            }
        } else if i != tree.root() {
            return Err(format!("non-root {i:?} has no parent"));
        }
    }

    // Every node reaches the root (no disconnected cycles), counted once.
    let mut reached = 0usize;
    for i in crate::traverse::BfsIter::new(tree) {
        let _ = i;
        reached += 1;
    }
    if reached != n {
        return Err(format!("only {reached}/{n} nodes reachable from the root"));
    }

    // Children groups sorted by id (determinism guarantee).
    for i in tree.nodes() {
        let ch = tree.children(i);
        if ch.windows(2).any(|w| w[0] >= w[1]) {
            return Err(format!("children of {i:?} not strictly sorted"));
        }
    }

    Ok(())
}

/// Checks that `order` is a permutation of the nodes in which every node
/// appears after all of its children, and returns the position (rank) of
/// each node.
pub fn ranks_of_topological_order(tree: &TaskTree, order: &[NodeId]) -> Result<Vec<u32>, String> {
    tree.check_topological(order).map_err(|e| e.to_string())?;
    let mut rank = vec![0u32; tree.len()];
    for (k, &i) in order.iter().enumerate() {
        rank[i.index()] = k as u32;
    }
    Ok(rank)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::TaskSpec;
    use crate::traverse::postorder;

    #[test]
    fn valid_tree_passes() {
        let t = TaskTree::from_parents(
            &[None, Some(0), Some(0), Some(1)],
            &[TaskSpec::default(); 4],
        )
        .unwrap();
        check_consistency(&t).unwrap();
    }

    #[test]
    fn ranks_invert_the_order() {
        let t = TaskTree::from_parents(
            &[None, Some(0), Some(0), Some(1)],
            &[TaskSpec::default(); 4],
        )
        .unwrap();
        let po = postorder(&t);
        let rank = ranks_of_topological_order(&t, &po).unwrap();
        for (k, &i) in po.iter().enumerate() {
            assert_eq!(rank[i.index()], k as u32);
        }
    }

    #[test]
    fn non_topological_rejected() {
        let t = TaskTree::from_parents(&[None, Some(0)], &[TaskSpec::default(); 2]).unwrap();
        assert!(ranks_of_topological_order(&t, &[NodeId(0), NodeId(1)]).is_err());
    }
}
