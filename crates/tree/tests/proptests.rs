//! Property-based tests of the tree substrate.

use memtree_tree::io::{tree_from_str, tree_to_string};
use memtree_tree::memory::{sequential_peak, LiveSet};
use memtree_tree::partition::{partition, PartitionPolicy, RESIDUAL};
use memtree_tree::traverse::{postorder, postorder_with_child_order};
use memtree_tree::validate::check_consistency;
use memtree_tree::{NodeId, TaskSpec, TaskTree, TreeStats};
use proptest::prelude::*;

/// Short lowercase/digit garbage for strictness tests — built from index
/// vectors because the vendored proptest has no string-regex strategies.
fn arb_garbage() -> impl Strategy<Value = String> {
    const CHARSET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
    (1usize..13)
        .prop_flat_map(|len| proptest::collection::vec(0usize..CHARSET.len(), len))
        .prop_map(|ixs| ixs.into_iter().map(|i| CHARSET[i] as char).collect())
}

/// Strategy: a random tree of `1..=max_n` nodes where node `i`'s parent is a
/// uniformly random earlier node — the classic random recursive tree.
fn arb_tree(max_n: usize) -> impl Strategy<Value = TaskTree> {
    (1..=max_n)
        .prop_flat_map(|n| {
            let parents = (1..n)
                .map(|i| 0..i)
                .collect::<Vec<_>>()
                .prop_map(move |ps| ps);
            let specs = proptest::collection::vec((0u64..64, 0u64..64, 0u32..8), n);
            (parents, specs)
        })
        .prop_map(|(parents, specs)| {
            let mut full_parents: Vec<Option<usize>> = vec![None];
            full_parents.extend(parents.into_iter().map(Some));
            let specs: Vec<TaskSpec> = specs
                .into_iter()
                .map(|(e, f, t)| TaskSpec::new(e, f, t as f64))
                .collect();
            TaskTree::from_parents(&full_parents, &specs).expect("generated tree is valid")
        })
}

proptest! {
    #[test]
    fn generated_trees_are_consistent(tree in arb_tree(64)) {
        check_consistency(&tree).unwrap();
    }

    #[test]
    fn postorder_is_topological_and_complete(tree in arb_tree(64)) {
        let po = postorder(&tree);
        tree.check_topological(&po).unwrap();
        prop_assert_eq!(po.len(), tree.len());
    }

    #[test]
    fn any_child_order_gives_valid_postorder(tree in arb_tree(48), seed in 0u64..1000) {
        // Pseudo-random child ranks derived from the seed.
        let rank: Vec<u64> = (0..tree.len() as u64)
            .map(|i| (i.wrapping_mul(seed.wrapping_add(0x9E3779B97F4A7C15))) ^ seed)
            .collect();
        let po = postorder_with_child_order(&tree, &rank);
        tree.check_topological(&po).unwrap();
    }

    #[test]
    fn io_roundtrip(tree in arb_tree(48)) {
        let text = tree_to_string(&tree);
        let back = tree_from_str(&text).unwrap();
        prop_assert_eq!(tree, back);
    }

    #[test]
    fn io_roundtrip_is_content_hash_equal(tree in arb_tree(48)) {
        // The wire guarantee the process backend leans on: a subtree
        // serialized to a worker is, as a scheduling problem, the
        // identical tree — pinned by the canonical content hash, not
        // just structural equality.
        let text = tree_to_string(&tree);
        let back = tree_from_str(&text).unwrap();
        prop_assert_eq!(tree.content_hash(), back.content_hash());
    }

    #[test]
    fn io_rejects_trailing_garbage(tree in arb_tree(32), garbage in arb_garbage()) {
        // Strictness: any data line after the declared node count is a
        // parse error, whatever it says.
        let text = format!("{}{garbage}\n", tree_to_string(&tree));
        prop_assert!(tree_from_str(&text).is_err());
    }

    #[test]
    fn io_rejects_concatenated_documents(tree in arb_tree(24)) {
        // Two valid documents back to back must not silently parse as
        // the first: across a pipe that would swallow a framing bug.
        let text = tree_to_string(&tree);
        prop_assert!(tree_from_str(&format!("{text}{text}")).is_err());
    }

    #[test]
    fn sequential_peak_bounded(tree in arb_tree(48)) {
        // The sequential peak of any postorder is at least the largest
        // MemNeeded and at most the total data footprint.
        let po = postorder(&tree);
        let peak = sequential_peak(&tree, &po).unwrap();
        let max_needed = tree.nodes().map(|i| tree.mem_needed(i)).max().unwrap();
        let everything: u64 = tree
            .nodes()
            .map(|i| tree.exec(i) + tree.output(i))
            .sum();
        prop_assert!(peak >= max_needed);
        prop_assert!(peak <= everything.max(max_needed));
    }

    #[test]
    fn live_set_matches_profile(tree in arb_tree(48)) {
        // Driving the LiveSet in postorder, current() right after start(i)
        // must equal the step's `during` from the profile.
        let po = postorder(&tree);
        let profile = memtree_tree::memory::sequential_profile(&tree, &po).unwrap();
        let mut ls = LiveSet::new(&tree);
        for step in &profile.steps {
            ls.start(step.node);
            prop_assert_eq!(ls.current(), step.during);
            ls.finish(step.node);
            prop_assert_eq!(ls.current(), step.after);
        }
        prop_assert_eq!(ls.peak(), profile.peak);
    }

    #[test]
    fn stats_are_internally_consistent(tree in arb_tree(64)) {
        let s = TreeStats::compute(&tree);
        let root = tree.root().index();
        prop_assert_eq!(s.subtree_size[root] as usize, tree.len());
        prop_assert!((s.subtree_time[root] - tree.total_time()).abs() < 1e-9);
        // Critical path ≤ total time; bottom level of any node ≤ critical path.
        let cp = s.critical_path(&tree);
        prop_assert!(cp <= tree.total_time() + 1e-9);
        for i in tree.nodes() {
            prop_assert!(s.bottom_level[i.index()] <= cp + 1e-9);
        }
        // Height equals max depth.
        let maxd = s.depth.iter().copied().max().unwrap();
        prop_assert_eq!(s.height, maxd);
    }

    #[test]
    fn ancestor_relation_matches_depth(tree in arb_tree(48)) {
        let s = TreeStats::compute(&tree);
        for i in tree.nodes() {
            if let Some(p) = tree.parent(i) {
                prop_assert!(tree.is_ancestor(p, i));
                prop_assert_eq!(s.depth[i.index()], s.depth[p.index()] + 1);
            }
        }
    }

    /// Every node lands in exactly one shard or the residual tree, the
    /// parts tile the tree, and shards are whole (downward-closed)
    /// subtrees.
    #[test]
    fn partition_assigns_every_node_exactly_once(
        tree in arb_tree(64),
        shards in 1usize..10,
    ) {
        let part = partition(&tree, &PartitionPolicy::balanced(shards));
        prop_assert!(part.shard_count() <= shards);
        prop_assert_eq!(part.assignment.len(), tree.len());

        // The assignment is the authoritative "exactly one home"; the
        // extracted parts must tile it exactly.
        let mut homes = vec![0usize; tree.len()];
        for (k, shard) in part.shards.iter().enumerate() {
            prop_assert_eq!(shard.tree.len(), shard.to_global.len());
            for (local, &g) in shard.to_global.iter().enumerate() {
                prop_assert_eq!(part.assignment[g.index()], k as u32);
                homes[g.index()] += 1;
                // Specs carried over verbatim.
                prop_assert_eq!(
                    shard.tree.spec(NodeId::from_index(local)),
                    tree.spec(g)
                );
            }
        }
        let mut proxies = 0usize;
        for (local, origin) in part.residual.origin.iter().enumerate() {
            match origin {
                Some(g) => {
                    prop_assert_eq!(part.assignment[g.index()], RESIDUAL);
                    homes[g.index()] += 1;
                    prop_assert_eq!(
                        part.residual.tree.spec(NodeId::from_index(local)),
                        tree.spec(*g)
                    );
                }
                None => proxies += 1,
            }
        }
        prop_assert!(homes.iter().all(|&h| h == 1), "a node has two homes");
        prop_assert_eq!(proxies, part.shard_count());

        // Downward closure: a shard node's children share its shard.
        for i in tree.nodes() {
            let s = part.assignment[i.index()];
            if s != RESIDUAL {
                for &c in tree.children(i) {
                    prop_assert_eq!(part.assignment[c.index()], s);
                }
            }
        }
    }

    /// Shard roots' parents are in the residual tree, and each proxy leaf
    /// mirrors its shard root's output under that parent.
    #[test]
    fn shard_frontiers_sit_on_the_residual_tree(
        tree in arb_tree(64),
        shards in 1usize..10,
    ) {
        let part = partition(&tree, &PartitionPolicy::balanced(shards));
        for (k, shard) in part.shards.iter().enumerate() {
            let root = shard.root_global();
            prop_assert_eq!(tree.parent(root), Some(shard.attach));
            prop_assert_eq!(part.assignment[shard.attach.index()], RESIDUAL);

            let proxy = part.residual.proxies[k];
            prop_assert!(part.residual.tree.is_leaf(proxy));
            prop_assert_eq!(part.residual.tree.output(proxy), tree.output(root));
            prop_assert_eq!(part.residual.tree.exec(proxy), 0);
            prop_assert_eq!(part.residual.tree.time(proxy), 0.0);
            let attach_local = part
                .residual
                .tree
                .parent(proxy)
                .expect("proxies are never the residual root");
            prop_assert_eq!(
                part.residual.origin[attach_local.index()],
                Some(shard.attach)
            );
        }
    }

    /// Re-stitching the parts rebuilds the original tree, hash-equal —
    /// the partition loses nothing and is canonical.
    #[test]
    fn restitched_partition_hash_equals_the_original(
        tree in arb_tree(64),
        shards in 1usize..10,
    ) {
        let part = partition(&tree, &PartitionPolicy::balanced(shards));
        prop_assert_eq!(part.stitch().content_hash(), tree.content_hash());
        // Determinism: partitioning again yields hash-identical parts.
        let again = partition(&tree, &PartitionPolicy::balanced(shards));
        prop_assert_eq!(&part.assignment, &again.assignment);
        for (a, b) in part.shards.iter().zip(&again.shards) {
            prop_assert_eq!(a.tree.content_hash(), b.tree.content_hash());
        }
        prop_assert_eq!(
            part.residual.tree.content_hash(),
            again.residual.tree.content_hash()
        );
    }
}

#[test]
fn node_id_is_small() {
    // The schedulers keep several per-node arrays of NodeId; 4 bytes each.
    assert_eq!(std::mem::size_of::<NodeId>(), 4);
}
