//! Sweep the memory bound from the bare minimum to 20x and watch the three
//! heuristics trade memory for parallelism — a single-tree rendition of
//! the paper's Figure 2, written against the unified `PolicySpec` /
//! `Platform` API: every policy, including the reduction-tree baseline
//! (which schedules a transformed tree), builds through the same call.
//!
//! Run with `cargo run --release --example memory_pressure_sweep`.

use memtree::gen::synthetic::paper_tree;
use memtree::order::mem_postorder;
use memtree::runtime::{Platform, SimPlatform};
use memtree::sched::{HeuristicKind, LowerBounds, PolicySpec};

fn main() {
    let tree = paper_tree(8_000, 7);
    let ao = mem_postorder(&tree);
    let min_memory = ao.sequential_peak(&tree);
    let p = 8;
    let platform = SimPlatform::new(p);

    println!(
        "tree: {} tasks, minimum memory {min_memory}, p = {p}",
        tree.len()
    );
    println!(
        "{:>7} {:>12} {:>12} {:>12}",
        "factor", "MemBooking", "Activation", "RedTree"
    );

    let kinds = [
        HeuristicKind::MemBooking,
        HeuristicKind::Activation,
        HeuristicKind::MemBookingRedTree,
    ];
    for factor in [1.0f64, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0, 20.0] {
        let memory = ((min_memory as f64) * factor).ceil() as u64;
        let lb = LowerBounds::compute(&tree, p, memory);

        let cells: Vec<String> = kinds
            .iter()
            .map(
                |&kind| match platform.run(&tree, &PolicySpec::new(kind, memory)) {
                    Ok(report) => format!("{:12.3}", report.makespan / lb.best()),
                    Err(e) if e.is_infeasible() => format!("{:>12}", "infeasible"),
                    Err(e) => panic!("{kind} must not fail mid-run: {e}"),
                },
            )
            .collect();
        println!("{factor:>7.2} {} {} {}", cells[0], cells[1], cells[2]);
    }
    println!("(normalized makespan: 1.0 = the best known lower bound)");
}
