//! Sweep the memory bound from the bare minimum to 20x and watch the three
//! heuristics trade memory for parallelism — a single-tree rendition of
//! the paper's Figure 2.
//!
//! Run with `cargo run --release --example memory_pressure_sweep`.

use memtree::gen::synthetic::paper_tree;
use memtree::order::mem_postorder;
use memtree::sched::{to_reduction_tree, Activation, LowerBounds, MemBooking, RedTreeBooking};
use memtree::sim::{simulate, SimConfig};

fn main() {
    let tree = paper_tree(8_000, 7);
    let ao = mem_postorder(&tree);
    let min_memory = ao.sequential_peak(&tree);
    let p = 8;

    // The RedTree baseline schedules a transformed tree.
    let transform = to_reduction_tree(&tree);
    let red_ao = mem_postorder(&transform.tree);

    println!("tree: {} tasks, minimum memory {min_memory}, p = {p}", tree.len());
    println!(
        "{:>7} {:>12} {:>12} {:>12}",
        "factor", "MemBooking", "Activation", "RedTree"
    );

    for factor in [1.0f64, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0, 10.0, 20.0] {
        let memory = ((min_memory as f64) * factor).ceil() as u64;
        let lb = LowerBounds::compute(&tree, p, memory);
        let norm = |makespan: f64| makespan / lb.best();

        let mb = MemBooking::try_new(&tree, &ao, &ao, memory)
            .ok()
            .map(|s| simulate(&tree, SimConfig::new(p, memory), s).expect("completes"));
        let ac = Activation::try_new(&tree, &ao, &ao, memory)
            .ok()
            .map(|s| simulate(&tree, SimConfig::new(p, memory), s).expect("completes"));
        let rt = RedTreeBooking::try_new(&transform.tree, &red_ao, &red_ao, memory)
            .ok()
            .map(|s| simulate(&transform.tree, SimConfig::new(p, memory), s).expect("completes"));

        let fmt = |t: Option<f64>| match t {
            Some(x) => format!("{x:12.3}"),
            None => format!("{:>12}", "infeasible"),
        };
        println!(
            "{factor:>7.2} {} {} {}",
            fmt(mb.map(|t| norm(t.makespan))),
            fmt(ac.map(|t| norm(t.makespan))),
            fmt(rt.map(|t| norm(t.makespan))),
        );
    }
    println!("(normalized makespan: 1.0 = the best known lower bound)");
}
