//! The paper's future-work extension in action: moldable tasks under
//! MemBooking's memory envelope.
//!
//! A deep assembly-tree chain has no tree parallelism — sequential-task
//! scheduling is stuck at the serial time. Giving MemBooking the ability
//! to mold tasks onto several processors (with Amdahl-law speedup)
//! recovers parallel efficiency while the memory guarantee is untouched.
//!
//! Run with `cargo run --release --example moldable_tasks`.

use memtree::order::mem_postorder;
use memtree::runtime::{Platform, ThreadedPlatform, Workload};
use memtree::sched::{AllotmentCaps, HeuristicKind, MemBooking, MoldableMemBooking, PolicySpec};
use memtree::sim::moldable::{simulate_moldable, SpeedupModel};
use memtree::sim::{simulate, SimConfig};

fn main() {
    // A band matrix's assembly tree: essentially a chain of fronts.
    // Rescale flops so times are readable (entry = 1 KiB, µs per flop).
    let pattern = memtree::multifrontal::SparsePattern::band(3000, 2);
    let mut spec = memtree::multifrontal::CorpusSpec::small();
    spec.params = memtree::multifrontal::AssemblyParams {
        entry_size: 8,
        time_scale: 1.0,
    };
    let tree = spec.analyze(&pattern, &(0..3000).collect::<Vec<_>>());
    let stats = memtree::tree::TreeStats::compute(&tree);
    println!(
        "band-matrix assembly tree: {} fronts, height {} (chain-like)",
        tree.len(),
        stats.height
    );

    let ao = mem_postorder(&tree);
    let m = ao.sequential_peak(&tree) * 2;
    let p = 8;

    // Baseline: sequential tasks. A chain cannot use more than one core.
    let seq = MemBooking::try_new(&tree, &ao, &ao, m).expect("feasible");
    let seq_trace = simulate(&tree, SimConfig::new(p, m), seq).expect("completes");
    println!(
        "sequential tasks : makespan {:10.1} (tree parallelism only)",
        seq_trace.makespan
    );

    // Moldable tasks under three speedup models.
    for (label, model) in [
        ("linear speedup  ", SpeedupModel::Linear),
        (
            "Amdahl f = 0.10 ",
            SpeedupModel::Amdahl {
                serial_fraction: 0.10,
            },
        ),
        (
            "Amdahl f = 0.50 ",
            SpeedupModel::Amdahl {
                serial_fraction: 0.50,
            },
        ),
    ] {
        // Fronts are dense kernels: let any of them use every core.
        let caps = AllotmentCaps::uniform(&tree, p as u32);
        let sched = MoldableMemBooking::try_new(&tree, &ao, &ao, m, caps).expect("feasible");
        let trace = simulate_moldable(&tree, p, m, model, sched).expect("completes");
        trace.validate(&tree, model).expect("valid");
        println!(
            "moldable, {label}: makespan {:10.1} ({:.2}x vs sequential tasks), peak mem {}/{}",
            trace.makespan,
            seq_trace.makespan / trace.makespan,
            trace.peak_actual,
            m
        );
    }

    // The predictions above, validated on real threads: the same moldable
    // spec gang-schedules its allotments onto the worker pool. A sleep
    // payload stands in for compute time, so gang members overlap even on
    // small hosts.
    let payload = Workload::Sleep {
        nanos_per_time_unit: 50_000.0,
        max_nanos: 400_000,
    };
    let threads = ThreadedPlatform::new(p).with_workload(payload);
    let seq_spec = PolicySpec::new(HeuristicKind::MemBooking, m);
    let thr_seq = threads.run(&tree, &seq_spec).expect("completes");
    let mold_spec = seq_spec
        .clone()
        .with_caps(AllotmentCaps::uniform(&tree, p as u32));
    let thr_mold = threads.run(&tree, &mold_spec).expect("completes");
    println!(
        "threaded (measured): sequential {:.3}s, gang-scheduled {:.3}s ({:.2}x), peak mem {}/{}",
        thr_seq.makespan,
        thr_mold.makespan,
        thr_seq.makespan / thr_mold.makespan,
        thr_mold.peak_actual,
        m
    );
}
