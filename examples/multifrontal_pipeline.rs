//! The multifrontal pipeline end to end: sparse matrix → elimination tree
//! → supernodes → assembly tree → memory-aware parallel schedule.
//!
//! This is the paper's motivating application: scheduling the assembly
//! tree of a sparse Cholesky factorization under bounded memory.
//!
//! Run with `cargo run --release --example multifrontal_pipeline`.

use memtree::multifrontal::{assembly_tree, ordering, SparsePattern};
use memtree::multifrontal::{colcount, etree, supernodes};
use memtree::order::{cp_order, mem_postorder};
use memtree::sched::MemBooking;
use memtree::sim::{simulate, SimConfig};
use memtree::tree::TreeStats;

fn main() {
    // A 60x60 grid Laplacian — a 3600-unknown PDE matrix.
    let k = 60;
    let pattern = SparsePattern::grid2d(k);
    println!(
        "matrix: {} unknowns, {} off-diagonal nonzeros",
        pattern.order(),
        pattern.nnz_off_diagonal()
    );

    // Fill-reducing ordering (nested dissection), then symbolic analysis.
    let perm = ordering::nested_dissection_grid2d(k);
    let permuted = pattern.permute(&perm);
    let parents = etree::elimination_tree(&permuted);
    let postorder = etree::etree_postorder(&parents);
    let matrix = permuted.permute(&postorder);
    let parents = etree::elimination_tree(&matrix);
    let cc = colcount::column_counts(&matrix, &parents);
    println!("factor nonzeros: {}", colcount::factor_nnz(&cc));

    let sn = supernodes::fundamental_supernodes(&parents, &cc);
    let sn_parent = supernodes::supernode_parents(&sn, &parents);
    println!("supernodes: {} (from {} columns)", sn.len(), matrix.order());

    let tree = assembly_tree(&sn, &sn_parent, Default::default());
    let stats = TreeStats::compute(&tree);
    println!(
        "assembly tree: {} fronts, height {}, max degree {}",
        tree.len(),
        stats.height,
        stats.max_degree
    );

    // Schedule the factorization on 8 cores with 1.5x the minimum memory.
    let ao = mem_postorder(&tree);
    let eo = cp_order(&tree);
    let min_memory = ao.sequential_peak(&tree);
    let memory = min_memory * 3 / 2;
    let sched = MemBooking::try_new(&tree, &ao, &eo, memory).expect("1.5x is feasible");
    let trace = simulate(&tree, SimConfig::new(8, memory), sched).expect("completes");
    memtree::sim::validate::validate_trace(&tree, &trace).expect("valid");

    let serial: f64 = tree.total_time();
    println!(
        "factorization schedule: makespan {:.3} vs serial {:.3} -> parallel speedup {:.2}x \
         within {:.0}% of the memory a sequential run needs",
        trace.makespan,
        serial,
        serial / trace.makespan,
        100.0 * memory as f64 / min_memory as f64
    );
    println!(
        "peak resident memory {} of bound {} ({:.0}%)",
        trace.peak_actual,
        memory,
        100.0 * trace.memory_fraction_used()
    );
}
