//! Compare the sequential traversals on one tree: peak memory of memPO vs
//! OptSeq vs naive postorder, average memory of the Appendix-A order, and
//! what each choice does to the parallel schedule.
//!
//! Run with `cargo run --release --example order_explorer`.

use memtree::gen::synthetic::paper_tree;
use memtree::order::{make_order, OrderKind};
use memtree::sched::MemBooking;
use memtree::sim::{simulate, SimConfig};
use memtree::tree::memory::sequential_average_memory;

fn main() {
    let tree = paper_tree(5_000, 99);
    println!("tree: {} tasks", tree.len());

    let kinds = [
        OrderKind::NaturalPostorder,
        OrderKind::MemPostorder,
        OrderKind::OptSeq,
        OrderKind::AvgMemPostorder,
        OrderKind::PerfPostorder,
        OrderKind::CriticalPath,
    ];

    println!("\nsequential traversals:");
    println!(
        "{:<12} {:>14} {:>16}",
        "order", "peak memory", "average memory"
    );
    for kind in kinds {
        let o = make_order(&tree, kind);
        let peak = o.sequential_peak(&tree);
        let avg = sequential_average_memory(&tree, o.sequence()).unwrap();
        println!("{:<12} {:>14} {:>16.1}", kind.label(), peak, avg);
    }

    // Parallel effect: AO fixed to memPO, EO varied.
    let ao = make_order(&tree, OrderKind::MemPostorder);
    let min_memory = ao.sequential_peak(&tree);
    let memory = min_memory * 2;
    println!("\nparallel makespan on 8 processors at 2x minimum memory (AO = memPO):");
    for eo_kind in [
        OrderKind::MemPostorder,
        OrderKind::CriticalPath,
        OrderKind::PerfPostorder,
    ] {
        let eo = make_order(&tree, eo_kind);
        let s = MemBooking::try_new(&tree, &ao, &eo, memory).expect("feasible");
        let trace = simulate(&tree, SimConfig::new(8, memory), s).expect("completes");
        println!(
            "  EO = {:<10} makespan {:.1}",
            eo_kind.label(),
            trace.makespan
        );
    }
}
