//! Quickstart: build a task tree, pick orders, schedule it with MemBooking
//! under a tight memory bound, and inspect the outcome.
//!
//! Run with `cargo run --release --example quickstart`.

use memtree::order::{cp_order, mem_postorder};
use memtree::sched::{Activation, LowerBounds, MemBooking};
use memtree::sim::{simulate, SimConfig};
use memtree::tree::{TaskSpec, TreeBuilder};

fn main() {
    // A small out-of-core-style tree: a root assembling three branches,
    // one of which is deep. Sizes are arbitrary memory units, times are
    // arbitrary time units.
    let mut b = TreeBuilder::new();
    let root = b.push(None, TaskSpec::new(4, 2, 3.0));
    for _ in 0..2 {
        let mid = b.push(Some(root), TaskSpec::new(2, 8, 2.0));
        for _ in 0..3 {
            b.push(Some(mid), TaskSpec::new(1, 6, 1.5));
        }
    }
    let deep_top = b.push(Some(root), TaskSpec::new(2, 10, 1.0));
    let mut prev = deep_top;
    for _ in 0..4 {
        prev = b.push(Some(prev), TaskSpec::new(3, 12, 2.0));
    }
    let tree = b.build().expect("hand-built tree is valid");
    println!("tree: {} tasks, root {:?}", tree.len(), tree.root());

    // The activation order is the peak-minimising postorder; execution
    // priority is the critical path (the paper's best combination).
    let ao = mem_postorder(&tree);
    let eo = cp_order(&tree);
    let min_memory = ao.sequential_peak(&tree);
    println!("minimum feasible memory (sequential postorder peak): {min_memory}");

    // Schedule on 3 processors with only 30% slack over the minimum.
    let memory = min_memory + min_memory * 3 / 10;
    let processors = 3;
    let lb = LowerBounds::compute(&tree, processors, memory);
    println!(
        "lower bounds: work {:.2}, critical path {:.2}, memory-aware {:.2}",
        lb.work, lb.critical_path, lb.memory_aware
    );

    for name in ["MemBooking", "Activation"] {
        let trace = match name {
            "MemBooking" => {
                let s = MemBooking::try_new(&tree, &ao, &eo, memory).expect("feasible");
                simulate(&tree, SimConfig::new(processors, memory), s).expect("completes")
            }
            _ => {
                let s = Activation::try_new(&tree, &ao, &eo, memory).expect("feasible");
                simulate(&tree, SimConfig::new(processors, memory), s).expect("completes")
            }
        };
        memtree::sim::validate::validate_trace(&tree, &trace).expect("trace is valid");
        println!(
            "{name:12} makespan {:7.2}  (x{:.3} of best bound)  peak mem {}/{} ({:.0}%)",
            trace.makespan,
            trace.makespan / lb.best(),
            trace.peak_actual,
            memory,
            100.0 * trace.memory_fraction_used()
        );
    }
}
