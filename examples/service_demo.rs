//! N tenants share one machine's memory bound through the multi-tenant
//! scheduling service (DESIGN.md §6.9).
//!
//! Every tenant submits its own tree and policy spec; the service prices
//! each session at its feasibility floor, admits what fits the free
//! budget, queues what does not, and refuses outright what could never
//! run — then rebalances freed budget to the queue as sessions complete.
//! The global booking peak provably never exceeds the bound: the budget
//! ledger hard-errors rather than overcommitting.
//!
//! Run with `cargo run --release --example service_demo`.

use memtree::gen::synthetic::paper_tree;
use memtree::runtime::Workload;
use memtree::sched::{HeuristicKind, PolicySpec};
use memtree::service::{
    Admission, Service, ServiceConfig, SessionBackend, SessionRequest, SubmitError,
};
use std::sync::Arc;

fn main() {
    // Eight tenants with their own trees; the machine only has room for
    // about three of the largest requests at a time.
    let tenants: Vec<Arc<_>> = (0..8)
        .map(|t| Arc::new(paper_tree(2_000 + 400 * t, 4_000 + t as u64)))
        .collect();
    let specs: Vec<PolicySpec> = tenants
        .iter()
        .map(|tree| {
            let probe = PolicySpec::new(HeuristicKind::MemBooking, 0);
            let floor = probe.min_feasible(tree);
            PolicySpec::new(HeuristicKind::MemBooking, floor * 2)
        })
        .collect();
    let max_request = specs.iter().map(|s| s.memory).max().unwrap();
    let capacity = max_request * 3;

    println!("machine bound M = {capacity} (room for ~3 of the largest requests)");
    // Real worker threads sleeping per task: sessions live long enough
    // that the contention — queueing, then rebalancing on completion —
    // actually shows.
    let service = Service::start(ServiceConfig::new(capacity).with_backend(
        SessionBackend::Threaded {
            workers: 2,
            workload: Workload::quick(),
        },
    ));

    // Submit everyone up front — later tenants queue — plus one session
    // that could never run: its requested bound is below its own floor.
    let mut tickets = Vec::new();
    for (t, (tree, spec)) in tenants.iter().zip(&specs).enumerate() {
        let priority = (t % 3) as u8;
        let ticket = service
            .submit(SessionRequest::new(spec.clone(), tree.clone()).with_priority(priority))
            .expect("feasible tenants are admitted or queued");
        let how = match ticket.admission {
            Admission::Immediate { budget } => format!("admitted with budget {budget}"),
            Admission::Queued { position } => format!("queued at position {position}"),
        };
        println!(
            "tenant {t} (prio {priority}, request {}): {how}",
            spec.memory
        );
        tickets.push((t, ticket));
    }
    let hopeless = PolicySpec::new(HeuristicKind::MemBooking, 1);
    match service.submit(SessionRequest::new(hopeless, tenants[0].clone())) {
        Err(SubmitError::Infeasible(refusal)) => {
            println!("hopeless tenant refused up front: {refusal}")
        }
        other => panic!("expected a refusal, got {other:?}"),
    }

    // Wait for everyone; completions hand their budget to the queue.
    for (t, ticket) in tickets {
        let outcome = ticket.wait().expect("service stays up");
        let report = outcome.result.expect("session runs");
        println!(
            "tenant {t}: {} tasks, peak booked {} within budget {}, waited {:?} for admission",
            report.tasks_run, report.peak_booked, outcome.budget, outcome.admission_wait
        );
        assert!(report.peak_booked <= outcome.budget);
    }

    let stats = service.shutdown();
    println!(
        "done: {} admitted / {} refused, peak {} tenants at once, peak booked {}/{} — \
         the ledger never overcommits",
        stats.admission.admitted,
        stats.admission.refused,
        stats.peak_running,
        stats.peak_reserved,
        stats.capacity
    );
    assert!(stats.peak_reserved <= stats.capacity);
}
