//! Run a task tree on real threads with MemBooking in the driver seat —
//! the "runtime execution" the paper's complexity analysis argues for.
//!
//! Completion order here is decided by the OS scheduler, not by a
//! simulator: the policy must react dynamically, and a memory ledger
//! aborts the run if bookings are ever exceeded.
//!
//! Run with `cargo run --release --example threaded_runtime`.

use memtree::gen::synthetic::paper_tree;
use memtree::order::{cp_order, mem_postorder};
use memtree::runtime::{execute, RuntimeConfig, Workload};
use memtree::sched::MemBooking;

fn main() {
    let tree = paper_tree(3_000, 2024);
    let ao = mem_postorder(&tree);
    let eo = cp_order(&tree);
    let min_memory = ao.sequential_peak(&tree);
    let memory = min_memory * 2;

    println!(
        "tree: {} tasks, minimum memory {min_memory}, running with bound {memory}",
        tree.len()
    );

    for workers in [1usize, 2, 4, 8] {
        let sched = MemBooking::try_new(&tree, &ao, &eo, memory).expect("feasible");
        let report = execute(
            &tree,
            RuntimeConfig { workers, memory },
            sched,
            // ~5 µs of sleep per model time unit, capped per task.
            Workload::Sleep { nanos_per_time_unit: 5.0, max_nanos: 3_000_000 },
        )
        .expect("threaded run completes");
        println!(
            "{workers} workers: {:.3}s wall, {} events, scheduler cost {:.1} µs/task, \
             peak booked {}/{} ({:.0}%)",
            report.wall_seconds,
            report.events,
            1e6 * report.scheduling_seconds / tree.len() as f64,
            report.peak_booked,
            memory,
            100.0 * report.peak_booked as f64 / memory as f64
        );
    }
    println!("ledger held: actual ≤ booked ≤ bound at every event");
}
