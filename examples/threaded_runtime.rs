//! Run a task tree on real threads with MemBooking in the driver seat —
//! the "runtime execution" the paper's complexity analysis argues for.
//!
//! Completion order here is decided by the OS scheduler, not by a
//! simulator: the policy must react dynamically, and the shared driver
//! aborts the run if bookings are ever exceeded. The same `PolicySpec`
//! also runs unchanged on the simulator — swap the platform, keep the
//! policy.
//!
//! Run with `cargo run --release --example threaded_runtime`.

use memtree::gen::synthetic::paper_tree;
use memtree::order::{mem_postorder, OrderKind};
use memtree::runtime::{Platform, SimPlatform, ThreadedPlatform, Workload};
use memtree::sched::{HeuristicKind, PolicySpec};

fn main() {
    let tree = paper_tree(3_000, 2024);
    let ao = mem_postorder(&tree);
    let min_memory = ao.sequential_peak(&tree);
    let memory = min_memory * 2;

    println!(
        "tree: {} tasks, minimum memory {min_memory}, running with bound {memory}",
        tree.len()
    );

    let spec = PolicySpec::new(HeuristicKind::MemBooking, memory)
        .with_orders(OrderKind::MemPostorder, OrderKind::CriticalPath);

    // Reference point: the same spec on the simulator (virtual time).
    let sim = SimPlatform::new(8).run(&tree, &spec).expect("simulates");
    println!(
        "simulator (p=8): makespan {:.1} model units, peak booked {}/{}",
        sim.makespan, sim.peak_booked, memory
    );

    for workers in [1usize, 2, 4, 8] {
        // ~5 µs of sleep per model time unit, capped per task.
        let platform = ThreadedPlatform::new(workers).with_workload(Workload::Sleep {
            nanos_per_time_unit: 5.0,
            max_nanos: 3_000_000,
        });
        let report = platform.run(&tree, &spec).expect("threaded run completes");
        println!(
            "{workers} workers: {:.3}s wall, {} events, scheduler cost {:.1} µs/task, \
             peak booked {}/{} ({:.0}%)",
            report.wall_seconds,
            report.events,
            1e6 * report.scheduling_seconds / tree.len() as f64,
            report.peak_booked,
            memory,
            100.0 * report.peak_booked as f64 / memory as f64
        );
    }
    println!("driver held: actual ≤ booked ≤ bound at every event, on both platforms");
}
