#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Facade crate re-exporting the memtree workspace API.
pub use memtree_gen as gen;
pub use memtree_multifrontal as multifrontal;
pub use memtree_order as order;
pub use memtree_runtime as runtime;
pub use memtree_sched as sched;
pub use memtree_service as service;
pub use memtree_sim as sim;
pub use memtree_tree as tree;
