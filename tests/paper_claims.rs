//! Executable checks of the paper's headline claims, at test scale.

use memtree::gen::synthetic::paper_tree;
use memtree::order::{make_order, mem_postorder, optimal_traversal, OrderKind};
use memtree::sched::{Activation, MemBooking, RedTreeBooking};
use memtree::sim::{simulate, SimConfig};

/// Theorem 1: MemBooking completes any tree whose AO fits sequentially —
/// across order kinds, processor counts and the exact minimum bound.
#[test]
fn theorem1_termination_at_minimum_memory() {
    for seed in 0..6 {
        let tree = paper_tree(400, seed);
        for ao_kind in [
            OrderKind::MemPostorder,
            OrderKind::OptSeq,
            OrderKind::PerfPostorder,
        ] {
            let ao = make_order(&tree, ao_kind);
            let m = ao.sequential_peak(&tree);
            for p in [1, 2, 8, 32] {
                let s = MemBooking::try_new(&tree, &ao, &ao, m).unwrap();
                let trace = simulate(&tree, SimConfig::new(p, m), s)
                    .unwrap_or_else(|e| panic!("seed {seed} {ao_kind:?} p={p}: {e}"));
                assert_eq!(trace.records.len(), tree.len());
            }
        }
    }
}

/// Section 7.3: MemBooking's speedup over Activation grows as memory
/// tightens, and vanishes when memory is plentiful.
#[test]
fn speedup_concentrates_at_tight_memory() {
    let mut tight_speedups = Vec::new();
    let mut loose_speedups = Vec::new();
    for seed in 0..10 {
        let tree = paper_tree(600, 100 + seed);
        let ao = mem_postorder(&tree);
        let min_m = ao.sequential_peak(&tree);
        let makespan = |factor: u64, membooking: bool| {
            let m = min_m * factor;
            if membooking {
                let s = MemBooking::try_new(&tree, &ao, &ao, m).unwrap();
                simulate(&tree, SimConfig::new(8, m), s).unwrap().makespan
            } else {
                let s = Activation::try_new(&tree, &ao, &ao, m).unwrap();
                simulate(&tree, SimConfig::new(8, m), s).unwrap().makespan
            }
        };
        tight_speedups.push(makespan(1, false) / makespan(1, true));
        loose_speedups.push(makespan(50, false) / makespan(50, true));
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (tight, loose) = (mean(&tight_speedups), mean(&loose_speedups));
    assert!(
        tight > 1.02,
        "under tight memory MemBooking should win on average: {tight}"
    );
    assert!(
        (loose - 1.0).abs() < 0.02,
        "with plentiful memory the heuristics should coincide: {loose}"
    );
    assert!(tight > loose, "speedup must concentrate at tight memory");
}

/// Section 3.2 / 7.4: the reduction-tree baseline needs strictly more
/// memory than MemBooking on most general trees — the "unable to schedule"
/// phenomenon.
#[test]
fn redtree_requires_more_memory() {
    let mut worse = 0;
    let total = 10;
    for seed in 0..total {
        let tree = paper_tree(400, 200 + seed);
        let ao = mem_postorder(&tree);
        let min_m = ao.sequential_peak(&tree);
        let tr = memtree::sched::to_reduction_tree(&tree);
        let red_ao = mem_postorder(&tr.tree);
        let red_min = RedTreeBooking::min_memory(&tr.tree, &red_ao);
        assert!(red_min >= min_m);
        if red_min > min_m {
            worse += 1;
        }
    }
    assert!(
        worse >= 8,
        "RedTree should need more memory on most trees: {worse}/{total}"
    );
}

/// Section 7.2 setup: OptSeq's peak is a valid, sometimes smaller,
/// normalisation base than memPO's.
#[test]
fn optseq_no_worse_than_mempo_at_scale() {
    for seed in 0..6 {
        let tree = paper_tree(2_000, 300 + seed);
        let opt = optimal_traversal(&tree);
        let po = mem_postorder(&tree);
        assert!(opt.peak <= po.sequential_peak(&tree));
        assert_eq!(opt.peak, opt.order.sequential_peak(&tree));
    }
}

/// Theorem 3 in anger: the memory-aware bound is respected by every
/// heuristic and becomes the *binding* bound under tight memory for
/// parallel-rich trees.
#[test]
fn memory_aware_bound_binds_under_pressure() {
    let tree = memtree::gen::shapes::spindle(16, 12, memtree::tree::TaskSpec::new(0, 10, 1.0));
    let ao = mem_postorder(&tree);
    let min_m = ao.sequential_peak(&tree);
    let p = 16;
    let lb = memtree::sched::LowerBounds::compute(&tree, p, min_m);
    assert!(
        lb.memory_bound_improves(),
        "for a wide spindle at minimum memory the memory bound must bind: {lb:?}"
    );
    let s = MemBooking::try_new(&tree, &ao, &ao, min_m).unwrap();
    let trace = simulate(&tree, SimConfig::new(p, min_m), s).unwrap();
    assert!(trace.makespan >= lb.memory_aware - 1e-9);
}
