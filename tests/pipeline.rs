//! Cross-crate integration: the full pipeline from sparse matrix to
//! validated parallel schedule, through the facade crate and the unified
//! `PolicySpec` construction path.

use memtree::multifrontal::{assembly_corpus, CorpusSpec};
use memtree::order::{make_order, OrderKind};
use memtree::runtime::{Platform, SimPlatform};
use memtree::sched::{HeuristicKind, LowerBounds, PolicySpec};
use memtree::sim::{simulate, validate::validate_trace, SimConfig};

#[test]
fn matrix_to_schedule_end_to_end() {
    for (name, tree) in assembly_corpus(&CorpusSpec::small()) {
        let ao = make_order(&tree, OrderKind::MemPostorder);
        let min_m = ao.sequential_peak(&tree);
        for factor in [1u64, 2, 4] {
            let m = min_m * factor;
            for kind in [HeuristicKind::MemBooking, HeuristicKind::Activation] {
                let spec = PolicySpec::new(kind, m)
                    .with_orders(OrderKind::MemPostorder, OrderKind::CriticalPath);
                let inst = spec
                    .instantiate(&tree)
                    .unwrap_or_else(|e| panic!("{name} {kind} factor {factor}: {e}"));
                let s = inst
                    .scheduler(&tree)
                    .unwrap_or_else(|e| panic!("{name} {kind} factor {factor}: {e}"));
                let trace = simulate(&tree, SimConfig::new(8, m), s)
                    .unwrap_or_else(|e| panic!("{name} {kind} factor {factor}: {e}"));
                validate_trace(&tree, &trace)
                    .unwrap_or_else(|e| panic!("{name} {kind} factor {factor}: {e}"));
                let lb = LowerBounds::compute(&tree, 8, m);
                assert!(
                    trace.makespan >= lb.best() - 1e-6,
                    "{name} {kind}: makespan {} below bound {}",
                    trace.makespan,
                    lb.best()
                );
            }
        }
    }
}

#[test]
fn membooking_beats_activation_on_the_corpus_under_pressure() {
    // The headline claim, at corpus level: tight memory, 8 processors,
    // both policies through the one platform entry point.
    let corpus = assembly_corpus(&CorpusSpec::small());
    let platform = SimPlatform::new(8);
    let mut mb_total = 0.0;
    let mut ac_total = 0.0;
    for (_, tree) in &corpus {
        let ao = make_order(tree, OrderKind::MemPostorder);
        let m = ao.sequential_peak(tree) * 2;
        for (kind, total) in [
            (HeuristicKind::MemBooking, &mut mb_total),
            (HeuristicKind::Activation, &mut ac_total),
        ] {
            let report = platform.run(tree, &PolicySpec::new(kind, m)).unwrap();
            *total += report.makespan;
        }
    }
    assert!(
        mb_total <= ac_total,
        "MemBooking total {mb_total} should not exceed Activation total {ac_total}"
    );
}

#[test]
fn redtree_is_first_class_in_the_pipeline() {
    // The old API refused to build MemBookingRedTree without a manual
    // transform; the spec path owns it.
    let (name, tree) = assembly_corpus(&CorpusSpec::small()).swap_remove(0);
    let ao = make_order(&tree, OrderKind::MemPostorder);
    let m = ao.sequential_peak(&tree) * 50;
    let report = SimPlatform::new(8)
        .run(&tree, &PolicySpec::new(HeuristicKind::MemBookingRedTree, m))
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    assert!(report.tasks_run >= tree.len());
    assert!(report.peak_booked <= m);
}

#[test]
fn facade_reexports_work() {
    // Each sub-crate is reachable through the facade.
    let tree = memtree::gen::shapes::chain(5, memtree::tree::TaskSpec::new(1, 2, 1.0));
    let _stats = memtree::tree::TreeStats::compute(&tree);
    let order = memtree::order::mem_postorder(&tree);
    assert_eq!(order.len(), 5);
    let text = memtree::tree::io::tree_to_string(&tree);
    let back = memtree::tree::io::tree_from_str(&text).unwrap();
    assert_eq!(tree, back);
}
