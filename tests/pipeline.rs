//! Cross-crate integration: the full pipeline from sparse matrix to
//! validated parallel schedule, through the facade crate.

use memtree::multifrontal::{assembly_corpus, CorpusSpec};
use memtree::order::{make_order, OrderKind};
use memtree::sched::{build_scheduler, HeuristicKind, LowerBounds};
use memtree::sim::{simulate, validate::validate_trace, SimConfig};

#[test]
fn matrix_to_schedule_end_to_end() {
    for (name, tree) in assembly_corpus(&CorpusSpec::small()) {
        let ao = make_order(&tree, OrderKind::MemPostorder);
        let eo = make_order(&tree, OrderKind::CriticalPath);
        let min_m = ao.sequential_peak(&tree);
        for factor in [1u64, 2, 4] {
            let m = min_m * factor;
            for kind in [HeuristicKind::MemBooking, HeuristicKind::Activation] {
                let s = build_scheduler(kind, &tree, &ao, &eo, m)
                    .unwrap_or_else(|e| panic!("{name} {kind} factor {factor}: {e}"));
                let trace = simulate(&tree, SimConfig::new(8, m), s)
                    .unwrap_or_else(|e| panic!("{name} {kind} factor {factor}: {e}"));
                validate_trace(&tree, &trace)
                    .unwrap_or_else(|e| panic!("{name} {kind} factor {factor}: {e}"));
                let lb = LowerBounds::compute(&tree, 8, m);
                assert!(
                    trace.makespan >= lb.best() - 1e-6,
                    "{name} {kind}: makespan {} below bound {}",
                    trace.makespan,
                    lb.best()
                );
            }
        }
    }
}

#[test]
fn membooking_beats_activation_on_the_corpus_under_pressure() {
    // The headline claim, at corpus level: tight memory, 8 processors.
    let corpus = assembly_corpus(&CorpusSpec::small());
    let mut mb_total = 0.0;
    let mut ac_total = 0.0;
    for (_, tree) in &corpus {
        let ao = make_order(tree, OrderKind::MemPostorder);
        let m = ao.sequential_peak(tree) * 2;
        for (kind, total) in [
            (HeuristicKind::MemBooking, &mut mb_total),
            (HeuristicKind::Activation, &mut ac_total),
        ] {
            let s = build_scheduler(kind, tree, &ao, &ao, m).unwrap();
            *total += simulate(tree, SimConfig::new(8, m), s).unwrap().makespan;
        }
    }
    assert!(
        mb_total <= ac_total,
        "MemBooking total {mb_total} should not exceed Activation total {ac_total}"
    );
}

#[test]
fn facade_reexports_work() {
    // Each sub-crate is reachable through the facade.
    let tree = memtree::gen::shapes::chain(5, memtree::tree::TaskSpec::new(1, 2, 1.0));
    let _stats = memtree::tree::TreeStats::compute(&tree);
    let order = memtree::order::mem_postorder(&tree);
    assert_eq!(order.len(), 5);
    let text = memtree::tree::io::tree_to_string(&tree);
    let back = memtree::tree::io::tree_from_str(&text).unwrap();
    assert_eq!(tree, back);
}
