//! Cross-validation between the discrete-event simulator and the real
//! threaded runtime, plus moldable-engine integration.

use memtree::gen::synthetic::paper_tree;
use memtree::order::{cp_order, mem_postorder, OrderKind};
use memtree::runtime::{execute, Platform, RuntimeConfig, SimPlatform, ThreadedPlatform, Workload};
use memtree::sched::{AllotmentCaps, HeuristicKind, MemBooking, MoldableMemBooking, PolicySpec};
use memtree::sim::moldable::{simulate_moldable, SpeedupModel};
use memtree::sim::{simulate, SimConfig};

/// Both execution vehicles must run the full tree under the same memory
/// bound; the threaded run obeys the same booking invariants the simulator
/// enforces (its ledger aborts otherwise).
#[test]
fn threaded_and_simulated_agree_on_feasibility() {
    for seed in 0..4 {
        let tree = paper_tree(300, 500 + seed);
        let ao = mem_postorder(&tree);
        let eo = cp_order(&tree);
        let m = ao.sequential_peak(&tree);

        let sim_trace = simulate(
            &tree,
            SimConfig::new(4, m),
            MemBooking::try_new(&tree, &ao, &eo, m).unwrap(),
        )
        .unwrap();
        assert_eq!(sim_trace.records.len(), tree.len());

        let report = execute(
            &tree,
            RuntimeConfig {
                workers: 4,
                memory: m,
            },
            MemBooking::try_new(&tree, &ao, &eo, m).unwrap(),
            Workload::Noop,
        )
        .unwrap();
        assert_eq!(report.tasks_run, tree.len());
        // The simulator's booking peak is a valid upper bound domain for
        // the threaded run too: both ≤ M.
        assert!(sim_trace.peak_booked <= m);
        assert!(report.peak_booked <= m);
    }
}

/// The unified Platform API: the same `PolicySpec` runs on the simulator
/// and on real threads, completes the same task set, and — with one
/// worker, where the completion order is forced — books identical peak
/// memory under `Workload::Noop`.
#[test]
fn same_spec_on_both_platforms_agrees() {
    for seed in 0..4 {
        let tree = paper_tree(250, 700 + seed);
        let ao = mem_postorder(&tree);
        let m = ao.sequential_peak(&tree);
        for kind in [
            HeuristicKind::MemBooking,
            HeuristicKind::Activation,
            HeuristicKind::Sequential,
        ] {
            let spec = PolicySpec::new(kind, m)
                .with_orders(OrderKind::MemPostorder, OrderKind::CriticalPath);
            // One worker: the event sequence is identical on both
            // platforms, so the booking trajectory is too.
            let sim = SimPlatform::new(1).run(&tree, &spec).unwrap();
            let thr = ThreadedPlatform::new(1).run(&tree, &spec).unwrap();
            assert_eq!(sim.tasks_run, thr.tasks_run, "seed {seed} {kind}");
            assert_eq!(
                sim.peak_booked, thr.peak_booked,
                "seed {seed} {kind}: single-worker peak booked must match"
            );
            // Many workers: completion order is up to the OS, but both
            // platforms must finish the tree inside the same envelope.
            let sim4 = SimPlatform::new(4).run(&tree, &spec).unwrap();
            let thr4 = ThreadedPlatform::new(4).run(&tree, &spec).unwrap();
            assert_eq!(sim4.tasks_run, thr4.tasks_run, "seed {seed} {kind}");
            assert!(sim4.peak_booked <= m && thr4.peak_booked <= m);
            assert!(thr4.peak_actual <= thr4.peak_booked);
        }
    }
}

/// The reduction-tree baseline is a first-class spec on both platforms:
/// the transform happens inside `instantiate`, once, identically.
#[test]
fn redtree_spec_runs_on_both_platforms() {
    let tree = paper_tree(200, 31);
    let ao = mem_postorder(&tree);
    let m = ao.sequential_peak(&tree) * 40;
    let spec = PolicySpec::new(HeuristicKind::MemBookingRedTree, m);
    let sim = SimPlatform::new(1).run(&tree, &spec).unwrap();
    let thr = ThreadedPlatform::new(1).run(&tree, &spec).unwrap();
    assert_eq!(sim.tasks_run, thr.tasks_run);
    assert!(sim.tasks_run > tree.len(), "fictitious leaves run too");
    assert_eq!(
        sim.peak_booked, thr.peak_booked,
        "single-worker determinism"
    );
}

/// The moldable engine degenerates to the sequential-task engine when
/// every cap is 1: identical makespans.
#[test]
fn moldable_with_unit_caps_equals_sequential_tasks() {
    for seed in 0..4 {
        let tree = paper_tree(250, 900 + seed);
        let ao = mem_postorder(&tree);
        let m = ao.sequential_peak(&tree) * 2;
        let p = 6;

        let seq = simulate(
            &tree,
            SimConfig::new(p, m),
            MemBooking::try_new(&tree, &ao, &ao, m).unwrap(),
        )
        .unwrap();

        let caps = AllotmentCaps::uniform(&tree, 1);
        let mold = MoldableMemBooking::try_new(&tree, &ao, &ao, m, caps).unwrap();
        let trace = simulate_moldable(&tree, p, m, SpeedupModel::Linear, mold).unwrap();
        trace.validate(&tree, SpeedupModel::Linear).unwrap();
        assert!(
            (trace.makespan - seq.makespan).abs() < 1e-9,
            "seed {seed}: moldable/unit {} vs sequential {}",
            trace.makespan,
            seq.makespan
        );
    }
}

/// Amdahl speedup interpolates between unit caps and linear scaling.
#[test]
fn amdahl_between_serial_and_linear() {
    let tree = paper_tree(250, 1234);
    let ao = mem_postorder(&tree);
    let m = ao.sequential_peak(&tree) * 2;
    let p = 8;
    let run = |model: SpeedupModel| {
        let caps = AllotmentCaps::uniform(&tree, p as u32);
        let s = MoldableMemBooking::try_new(&tree, &ao, &ao, m, caps).unwrap();
        simulate_moldable(&tree, p, m, model, s).unwrap().makespan
    };
    let linear = run(SpeedupModel::Linear);
    let amdahl = run(SpeedupModel::Amdahl {
        serial_fraction: 0.3,
    });
    let serial_caps = {
        let caps = AllotmentCaps::uniform(&tree, 1);
        let s = MoldableMemBooking::try_new(&tree, &ao, &ao, m, caps).unwrap();
        simulate_moldable(&tree, p, m, SpeedupModel::Linear, s)
            .unwrap()
            .makespan
    };
    assert!(
        linear <= amdahl + 1e-9,
        "linear {linear} vs amdahl {amdahl}"
    );
    assert!(
        amdahl <= serial_caps + 1e-9,
        "amdahl {amdahl} vs unit-cap {serial_caps}"
    );
}
