//! Cross-validation between the discrete-event simulator and the real
//! threaded runtime, plus moldable-engine integration.

use memtree::gen::synthetic::paper_tree;
use memtree::multifrontal::{assembly_corpus, CorpusSpec};
use memtree::order::{cp_order, mem_postorder, OrderKind};
use memtree::runtime::{execute, Platform, RuntimeConfig, SimPlatform, ThreadedPlatform, Workload};
use memtree::sched::{AllotmentCaps, HeuristicKind, MemBooking, MoldableMemBooking, PolicySpec};
use memtree::sim::moldable::{simulate_moldable, SpeedupModel};
use memtree::sim::{simulate, SimConfig};
use memtree::tree::TaskTree;

/// Worker counts the cross-platform cases sweep: the CI matrix pins one
/// count per job via `MEMTREE_TEST_WORKERS`; locally the default covers
/// p ∈ {1, 2, 4}.
fn worker_counts() -> Vec<usize> {
    RuntimeConfig::worker_counts_from_env(&[1, 2, 4])
}

/// The moldable cross-platform contract for one tree: the same spec runs
/// the identical task set on the simulator and on gang-scheduled threads;
/// both stay inside the booking envelope; and with one worker — where the
/// completion order is forced — the booking trajectories coincide exactly.
fn assert_moldable_equivalence(name: &str, tree: &TaskTree, m: u64) {
    for p in worker_counts() {
        let caps = AllotmentCaps::uniform(tree, p as u32);
        let spec = PolicySpec::new(HeuristicKind::MemBooking, m).with_caps(caps);
        let sim = SimPlatform::new(p).run(tree, &spec).unwrap();
        let thr = ThreadedPlatform::new(p).run(tree, &spec).unwrap();
        assert_eq!(sim.tasks_run, tree.len(), "{name} p={p}");
        assert_eq!(
            sim.tasks_run, thr.tasks_run,
            "{name} p={p}: identical task sets on both platforms"
        );
        assert_eq!(sim.policy, thr.policy, "{name} p={p}");
        assert!(sim.peak_booked <= m && thr.peak_booked <= m, "{name} p={p}");
        assert!(thr.peak_actual <= thr.peak_booked, "{name} p={p}");
        if p == 1 {
            // Single worker: the event sequence is identical on both
            // platforms, so the booked and actual peaks are too.
            assert_eq!(sim.peak_booked, thr.peak_booked, "{name}: p=1 peaks");
            assert_eq!(sim.peak_actual, thr.peak_actual, "{name}: p=1 peaks");
        }
    }
}

/// Moldable specs are first-class on both platforms across synthetic
/// trees and worker counts.
#[test]
fn moldable_spec_equivalent_on_synthetic_trees() {
    for seed in 0..3 {
        let tree = paper_tree(200, 40 + seed);
        let m = mem_postorder(&tree).sequential_peak(&tree) * 2;
        assert_moldable_equivalence(&format!("synth-{seed}"), &tree, m);
    }
}

/// … and across assembly trees from the multifrontal pipeline, at the
/// minimum feasible memory (the tight Theorem-1 regime).
#[test]
fn moldable_spec_equivalent_on_assembly_trees() {
    let corpus = assembly_corpus(&CorpusSpec::small());
    assert!(corpus.len() >= 4, "small corpus unexpectedly empty");
    for (name, tree) in corpus.iter().take(4) {
        let m = mem_postorder(tree).sequential_peak(tree);
        assert_moldable_equivalence(name, tree, m);
    }
}

/// Both execution vehicles must run the full tree under the same memory
/// bound; the threaded run obeys the same booking invariants the simulator
/// enforces (its ledger aborts otherwise).
#[test]
fn threaded_and_simulated_agree_on_feasibility() {
    for seed in 0..4 {
        let tree = paper_tree(300, 500 + seed);
        let ao = mem_postorder(&tree);
        let eo = cp_order(&tree);
        let m = ao.sequential_peak(&tree);

        let sim_trace = simulate(
            &tree,
            SimConfig::new(4, m),
            MemBooking::try_new(&tree, &ao, &eo, m).unwrap(),
        )
        .unwrap();
        assert_eq!(sim_trace.records.len(), tree.len());

        let report = execute(
            &tree,
            RuntimeConfig {
                workers: 4,
                memory: m,
            },
            MemBooking::try_new(&tree, &ao, &eo, m).unwrap(),
            Workload::Noop,
        )
        .unwrap();
        assert_eq!(report.tasks_run, tree.len());
        // The simulator's booking peak is a valid upper bound domain for
        // the threaded run too: both ≤ M.
        assert!(sim_trace.peak_booked <= m);
        assert!(report.peak_booked <= m);
    }
}

/// The unified Platform API: the same `PolicySpec` runs on the simulator
/// and on real threads, completes the same task set, and — with one
/// worker, where the completion order is forced — books identical peak
/// memory under `Workload::Noop`.
#[test]
fn same_spec_on_both_platforms_agrees() {
    for seed in 0..4 {
        let tree = paper_tree(250, 700 + seed);
        let ao = mem_postorder(&tree);
        let m = ao.sequential_peak(&tree);
        for kind in [
            HeuristicKind::MemBooking,
            HeuristicKind::Activation,
            HeuristicKind::Sequential,
        ] {
            let spec = PolicySpec::new(kind, m)
                .with_orders(OrderKind::MemPostorder, OrderKind::CriticalPath);
            // One worker: the event sequence is identical on both
            // platforms, so the booking trajectory is too.
            let sim = SimPlatform::new(1).run(&tree, &spec).unwrap();
            let thr = ThreadedPlatform::new(1).run(&tree, &spec).unwrap();
            assert_eq!(sim.tasks_run, thr.tasks_run, "seed {seed} {kind}");
            assert_eq!(
                sim.peak_booked, thr.peak_booked,
                "seed {seed} {kind}: single-worker peak booked must match"
            );
            // Many workers: completion order is up to the OS, but both
            // platforms must finish the tree inside the same envelope.
            let sim4 = SimPlatform::new(4).run(&tree, &spec).unwrap();
            let thr4 = ThreadedPlatform::new(4).run(&tree, &spec).unwrap();
            assert_eq!(sim4.tasks_run, thr4.tasks_run, "seed {seed} {kind}");
            assert!(sim4.peak_booked <= m && thr4.peak_booked <= m);
            assert!(thr4.peak_actual <= thr4.peak_booked);
        }
    }
}

/// The reduction-tree baseline is a first-class spec on both platforms:
/// the transform happens inside `instantiate`, once, identically.
#[test]
fn redtree_spec_runs_on_both_platforms() {
    let tree = paper_tree(200, 31);
    let ao = mem_postorder(&tree);
    let m = ao.sequential_peak(&tree) * 40;
    let spec = PolicySpec::new(HeuristicKind::MemBookingRedTree, m);
    let sim = SimPlatform::new(1).run(&tree, &spec).unwrap();
    let thr = ThreadedPlatform::new(1).run(&tree, &spec).unwrap();
    assert_eq!(sim.tasks_run, thr.tasks_run);
    assert!(sim.tasks_run > tree.len(), "fictitious leaves run too");
    assert_eq!(
        sim.peak_booked, thr.peak_booked,
        "single-worker determinism"
    );
}

/// The moldable engine degenerates to the sequential-task engine when
/// every cap is 1: identical makespans.
#[test]
fn moldable_with_unit_caps_equals_sequential_tasks() {
    for seed in 0..4 {
        let tree = paper_tree(250, 900 + seed);
        let ao = mem_postorder(&tree);
        let m = ao.sequential_peak(&tree) * 2;
        let p = 6;

        let seq = simulate(
            &tree,
            SimConfig::new(p, m),
            MemBooking::try_new(&tree, &ao, &ao, m).unwrap(),
        )
        .unwrap();

        let caps = AllotmentCaps::uniform(&tree, 1);
        let mold = MoldableMemBooking::try_new(&tree, &ao, &ao, m, caps).unwrap();
        let trace = simulate_moldable(&tree, p, m, SpeedupModel::Linear, mold).unwrap();
        trace.validate(&tree, SpeedupModel::Linear).unwrap();
        assert!(
            (trace.makespan - seq.makespan).abs() < 1e-9,
            "seed {seed}: moldable/unit {} vs sequential {}",
            trace.makespan,
            seq.makespan
        );
    }
}

/// Amdahl speedup interpolates between unit caps and linear scaling.
#[test]
fn amdahl_between_serial_and_linear() {
    let tree = paper_tree(250, 1234);
    let ao = mem_postorder(&tree);
    let m = ao.sequential_peak(&tree) * 2;
    let p = 8;
    let run = |model: SpeedupModel| {
        let caps = AllotmentCaps::uniform(&tree, p as u32);
        let s = MoldableMemBooking::try_new(&tree, &ao, &ao, m, caps).unwrap();
        simulate_moldable(&tree, p, m, model, s).unwrap().makespan
    };
    let linear = run(SpeedupModel::Linear);
    let amdahl = run(SpeedupModel::Amdahl {
        serial_fraction: 0.3,
    });
    let serial_caps = {
        let caps = AllotmentCaps::uniform(&tree, 1);
        let s = MoldableMemBooking::try_new(&tree, &ao, &ao, m, caps).unwrap();
        simulate_moldable(&tree, p, m, SpeedupModel::Linear, s)
            .unwrap()
            .makespan
    };
    assert!(
        linear <= amdahl + 1e-9,
        "linear {linear} vs amdahl {amdahl}"
    );
    assert!(
        amdahl <= serial_caps + 1e-9,
        "amdahl {amdahl} vs unit-cap {serial_caps}"
    );
}
