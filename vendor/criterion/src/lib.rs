#![warn(missing_docs)]
//! Minimal offline stand-in for the crates.io `criterion` crate.
//!
//! Provides the harness subset this workspace's benches use —
//! [`Criterion`], benchmark groups, [`BenchmarkId`], [`Bencher::iter`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros. Measurement is a
//! plain warm-up-then-sample loop reporting min/mean per iteration; no
//! statistics beyond that, no plots, no CLI filtering.
//!
//! Replace this path dependency with the real crate when a registry is
//! reachable; no call sites need to change.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level harness configuration and entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.sample_size = n;
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        run_bench(name, self.sample_size, &mut f);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` with a display label derived from `id`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_bench(
            &label,
            self.criterion.sample_size,
            &mut |b: &mut Bencher| f(b, input),
        );
    }

    /// Benchmarks `f` under `name` within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let label = format!("{}/{name}", self.name);
        run_bench(&label, self.criterion.sample_size, &mut f);
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier for a parameterised benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function/parameter` id.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

/// Drives the closure under measurement.
pub struct Bencher {
    samples: usize,
    /// Collected per-sample durations (seconds), filled by [`Bencher::iter`].
    results: Vec<f64>,
}

impl Bencher {
    /// Times `f`: one untimed warm-up call, then `samples` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std_black_box(f());
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std_black_box(f());
            self.results.push(t0.elapsed().as_secs_f64());
        }
    }
}

fn run_bench(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        results: Vec::with_capacity(samples),
    };
    f(&mut b);
    if b.results.is_empty() {
        println!("  {label}: no samples (Bencher::iter never called)");
        return;
    }
    let n = b.results.len() as f64;
    let mean = b.results.iter().sum::<f64>() / n;
    let min = b.results.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "  {label}: mean {:.3} ms, min {:.3} ms over {} samples",
        mean * 1e3,
        min * 1e3,
        b.results.len()
    );
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.bench_with_input(BenchmarkId::new("square", 12), &12u64, |b, &x| {
            b.iter(|| x * x)
        });
        group.bench_function("noop", |b| b.iter(|| ()));
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default().sample_size(3);
        quick_bench(&mut c);
        c.bench_function("free", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(simple_group, quick_bench);
    criterion_group! {
        name = configured_group;
        config = Criterion::default().sample_size(2);
        targets = quick_bench
    }

    #[test]
    fn group_macros_expand() {
        simple_group();
        configured_group();
    }
}
