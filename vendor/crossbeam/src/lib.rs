#![warn(missing_docs)]
//! Minimal offline stand-in for the crates.io `crossbeam` crate (0.8 API).
//!
//! Only the `channel::unbounded` MPMC channel is provided — the one piece
//! of crossbeam this workspace uses (the threaded executor's task and
//! completion queues). The implementation is a mutex-protected `VecDeque`
//! with a condvar; correctness over raw throughput, which is fine because
//! the executor sends one message per *task*, not per memory operation.
//!
//! Replace this path dependency with the real crate when a registry is
//! reachable; no call sites need to change.

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::Arc;

    // Sync façade: `std` in production, `minloom` under
    // `--cfg memtree_loom` so the no-lost/no-duplicated-message claim is
    // model-checked (memtree_runtime tests/model/channel.rs). The
    // blocking behaviour (recv parks, disconnect wakes) rides entirely on
    // these two types, so the swap covers the whole protocol.
    #[cfg(not(memtree_loom))]
    use std::sync::{Condvar, Mutex};

    #[cfg(memtree_loom)]
    use minloom::sync::{Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    /// The sending half; clonable across threads.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clonable across threads (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`; fails only when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().expect("channel lock poisoned");
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            st.queue.push_back(msg);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .expect("channel lock poisoned")
                .senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel lock poisoned");
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                // Wake blocked receivers so they observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().expect("channel lock poisoned");
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.ready.wait(st).expect("channel lock poisoned");
            }
        }

        /// Blocks until a message arrives, every sender is dropped, or
        /// `timeout` elapses — the watchdog primitive a sharded runtime
        /// uses to detect silent workers.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut st = self.shared.state.lock().expect("channel lock poisoned");
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let Some(remaining) = deadline.checked_duration_since(std::time::Instant::now())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, result) = self
                    .shared
                    .ready
                    .wait_timeout(st, remaining)
                    .expect("channel lock poisoned");
                st = guard;
                if result.timed_out() && st.queue.is_empty() && st.senders > 0 {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().expect("channel lock poisoned");
            match st.queue.pop_front() {
                Some(msg) => Ok(msg),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .expect("channel lock poisoned")
                .receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .state
                .lock()
                .expect("channel lock poisoned")
                .receivers -= 1;
        }
    }

    // Real-thread tests; under `memtree_loom` the channel is exercised by
    // the exhaustive model suite in memtree_runtime tests/model/channel.rs
    // instead (these would panic: minloom primitives outside a model).
    #[cfg(all(test, not(memtree_loom)))]
    mod tests {
        use super::*;

        #[test]
        fn fifo_within_a_single_consumer() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv(), Ok(i));
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn recv_timeout_times_out_and_delivers() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(10)), Ok(7));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn disconnect_is_observed() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn mpmc_under_contention_delivers_every_message() {
            let (tx, rx) = unbounded::<usize>();
            let n = 1_000;
            let consumers = 4;
            let total: usize = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..consumers)
                    .map(|_| {
                        let rx = rx.clone();
                        scope.spawn(move || {
                            let mut got = 0;
                            while rx.recv().is_ok() {
                                got += 1;
                            }
                            got
                        })
                    })
                    .collect();
                drop(rx);
                for i in 0..n {
                    tx.send(i).unwrap();
                }
                drop(tx);
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            });
            assert_eq!(total, n);
        }
    }
}
