#![warn(missing_docs)]
//! Minimal offline stand-in for a `tokio`-style async executor.
//!
//! Implements exactly the API subset the workspace's `AsyncPlatform`
//! uses — a hand-rolled executor in the DESIGN.md §1 offline-subset
//! convention, mirroring the shape (not the implementation) of
//! `tokio::runtime::Runtime`:
//!
//! * [`Runtime::new`] — `n` worker threads polling a shared FIFO run
//!   queue (`n == 1` is the single-threaded flavour; there is no
//!   work-stealing, dynamic claiming off one queue balances fine at
//!   this scale);
//! * [`Runtime::spawn`] — fire-and-forget task submission (`'static`
//!   futures of output `()`; the platform reports completions through
//!   its own channel, so join handles are not part of the subset);
//! * [`Runtime::block_on`] — drive one future on the caller's thread
//!   (condvar parking), used by tests and small harnesses;
//! * [`time::sleep`] — a timer future backed by one shared timer
//!   thread (binary heap of deadlines, condvar-timed waits), so a
//!   sleeping task occupies **no** worker thread — the property that
//!   lets an IO-bound front release its executor;
//! * [`yield_now`] — cooperative rescheduling (pending once, wake
//!   immediately);
//! * [`Runtime::panicked_tasks`] — a panicking task poll is caught,
//!   counted, and the task dropped, so an embedding can turn a dead
//!   task into a loud error instead of a hang.
//!
//! Replace this path dependency with the real crate when a registry is
//! reachable; call sites only touch the subset above.

use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::{Arc, OnceLock, Weak};
use std::task::{Context, Poll, Wake, Waker};
use std::time::{Duration, Instant};

use sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use sync::{Condvar, Mutex};

/// Sync façade: `std` in production, `minloom` under `--cfg memtree_loom`
/// so the run-queue/future-slot/wake protocol can be model-checked
/// (DESIGN.md §6.13). The process-global timer is deliberately excluded —
/// it is wall-clock-driven and keeps `std::sync` below; under the loom
/// cfg the model suite exercises the sleep wake path through
/// [`model_api`] instead of the real timer thread.
mod sync {
    #[cfg(not(memtree_loom))]
    pub(crate) use std::sync::{Condvar, Mutex};

    #[cfg(memtree_loom)]
    pub(crate) use minloom::sync::{Condvar, Mutex};

    pub(crate) mod atomic {
        #[cfg(not(memtree_loom))]
        pub(crate) use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

        #[cfg(memtree_loom)]
        pub(crate) use minloom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    }

    pub(crate) mod thread {
        #[cfg(not(memtree_loom))]
        pub(crate) use std::thread::{Builder, JoinHandle};

        #[cfg(memtree_loom)]
        pub(crate) use minloom::thread::{Builder, JoinHandle};
    }
}

/// Timer futures. The module path mirrors `tokio::time`.
pub mod time {
    pub use super::{sleep, Sleep};
}

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// The shared run queue: ready tasks in FIFO order, plus shutdown and
/// panic accounting.
struct Queue {
    ready: Mutex<QueueState>,
    available: Condvar,
    panicked: AtomicUsize,
}

struct QueueState {
    tasks: VecDeque<Arc<Task>>,
    closed: bool,
}

/// One spawned task: its future (taken while being polled) and the queue
/// it reschedules onto when woken.
struct Task {
    future: Mutex<Option<BoxFuture>>,
    queue: Arc<Queue>,
    /// Collapses redundant wakes: a task already queued (or being moved
    /// to the queue) is not enqueued twice.
    queued: AtomicBool,
}

impl Task {
    fn schedule(self: &Arc<Self>) {
        // ordering: AcqRel — the release half publishes everything the
        // waking thread wrote before the wake (the data the future will
        // read when re-polled) into the flag; the worker's AcqRel swap in
        // [`worker_loop`] picks it up even when this wake is absorbed by
        // an already-set flag. The acquire half orders chained wakes.
        // Model-checked by model/minitok.rs::wake_during_poll_not_lost.
        if self.queued.swap(true, Ordering::AcqRel) {
            return;
        }
        let mut state = self.queue.ready.lock().expect("run queue poisoned");
        if state.closed {
            return;
        }
        state.tasks.push_back(self.clone());
        drop(state);
        self.queue.available.notify_one();
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        self.schedule();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.schedule();
    }
}

/// A small multi-threaded futures executor; see the crate docs for the
/// mirrored API subset.
pub struct Runtime {
    queue: Arc<Queue>,
    workers: Vec<sync::thread::JoinHandle<()>>,
    /// Every task ever spawned, weakly. A task parked in the timer is
    /// reachable only through the waker cycle (`Task` → future → `Sleep`
    /// → waker slot → `Task`); this list lets `drop` break that cycle by
    /// taking the futures of whatever is still alive.
    spawned: Mutex<Vec<std::sync::Weak<Task>>>,
}

impl Runtime {
    /// A runtime with `threads` worker threads (`threads == 1` is the
    /// single-threaded flavour).
    ///
    /// # Panics
    /// When `threads` is 0.
    pub fn new(threads: usize) -> Runtime {
        assert!(threads >= 1, "a runtime needs at least one worker thread");
        let queue = Arc::new(Queue {
            ready: Mutex::new(QueueState {
                tasks: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            panicked: AtomicUsize::new(0),
        });
        let workers = (0..threads)
            .map(|k| {
                let queue = queue.clone();
                sync::thread::Builder::new()
                    .name(format!("minitok-worker-{k}"))
                    .spawn(move || worker_loop(&queue))
                    .expect("spawning a minitok worker")
            })
            .collect();
        Runtime {
            queue,
            workers,
            spawned: Mutex::new(Vec::new()),
        }
    }

    /// Submits `future` to the run queue (fire-and-forget).
    pub fn spawn<F>(&self, future: F)
    where
        F: Future<Output = ()> + Send + 'static,
    {
        let task = Arc::new(Task {
            future: Mutex::new(Some(Box::pin(future))),
            queue: self.queue.clone(),
            queued: AtomicBool::new(false),
        });
        {
            let mut spawned = self.spawned.lock().expect("spawn list poisoned");
            // Keep the list proportional to *live* tasks, amortised O(1).
            if spawned.len() == spawned.capacity() {
                spawned.retain(|t| t.strong_count() > 0);
            }
            spawned.push(Arc::downgrade(&task));
        }
        task.schedule();
    }

    /// Number of spawned tasks whose poll panicked (the task is caught,
    /// counted and dropped — it will never complete). An embedding that
    /// waits on task completions should treat a rising count as a dead
    /// peer, not keep waiting.
    pub fn panicked_tasks(&self) -> usize {
        // ordering: Acquire — pairs with the AcqRel fetch_add in
        // [`worker_loop`]: a count of n implies the n dead tasks'
        // partial effects are visible to the embedding deciding to stop
        // waiting on them.
        self.queue.panicked.load(Ordering::Acquire)
    }

    /// Drives `future` to completion on the caller's thread (worker
    /// threads keep serving spawned tasks concurrently).
    pub fn block_on<F: Future>(&self, future: F) -> F::Output {
        block_on(future)
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        {
            let mut state = self.queue.ready.lock().expect("run queue poisoned");
            state.closed = true;
            state.tasks.clear();
        }
        self.queue.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Tasks parked in the timer survive the queue clear through the
        // waker cycle (task → future → Sleep → waker slot → task). The
        // workers are joined, so no poll is in flight: take their futures
        // to break the cycle and kill their timer registrations…
        for task in self.spawned.lock().expect("spawn list poisoned").drain(..) {
            if let Some(task) = task.upgrade() {
                *task.future.lock().expect("task future poisoned") = None;
            }
        }
        // …then sweep the dead weak handles out of the process-global
        // heap (the timer itself only ever wakes live registrations: a
        // dead handle fails to upgrade and wakes nobody).
        prune_dead_timers();
    }
}

fn worker_loop(queue: &Arc<Queue>) {
    loop {
        let task = {
            let mut state = queue.ready.lock().expect("run queue poisoned");
            loop {
                if let Some(task) = state.tasks.pop_front() {
                    break task;
                }
                if state.closed {
                    return;
                }
                state = queue.available.wait(state).expect("run queue poisoned");
            }
        };
        // The future stays locked for the whole poll: a stale waker firing
        // mid-poll re-enqueues the task (queued was cleared below), and the
        // worker that pops that entry parks on this lock until the poll is
        // done — never observes a half-moved future, never loses a wake.
        let mut slot = task.future.lock().expect("task future poisoned");
        let Some(future) = slot.as_mut() else {
            continue; // already completed (or panicked)
        };
        // Cleared *before* polling so a wake arriving mid-poll re-enqueues.
        //
        // ordering: AcqRel swap, not a store — the acquire half is
        // load-bearing. A wake landing between the pop above and this
        // clear is *absorbed* (its swap saw `true` and did not enqueue);
        // the only happens-before edge carrying that waker's writes into
        // the poll below is this swap acquiring the waker's release. The
        // old `store(false, Release)` had no acquire half: the poll could
        // read stale data, return Pending, and — the wake being absorbed —
        // never run again. Found by, and model-checked in,
        // model/minitok.rs::wake_during_poll_not_lost; the
        // memtree_loom_mutate_minitok_store teeth check reinstates the
        // store and the model suite must fail on the lost wakeup.
        #[cfg(not(memtree_loom_mutate_minitok_store))]
        task.queued.swap(false, Ordering::AcqRel);
        #[cfg(memtree_loom_mutate_minitok_store)]
        task.queued.store(false, Ordering::Release);
        let waker = Waker::from(task.clone());
        let mut cx = Context::from_waker(&waker);
        match catch_unwind(AssertUnwindSafe(|| future.as_mut().poll(&mut cx))) {
            Ok(Poll::Ready(())) => *slot = None,
            Ok(Poll::Pending) => {}
            Err(_) => {
                // Drop the future and count the death so embeddings can
                // stop waiting on its completion.
                *slot = None;
                // ordering: AcqRel — release publishes the dead task's
                // last writes with the count ([`Runtime::panicked_tasks`]
                // loads Acquire); acquire chains earlier deaths.
                queue.panicked.fetch_add(1, Ordering::AcqRel);
            }
        }
    }
}

/// Drives `future` to completion on the current thread — condvar
/// parking, no runtime required (timers still work: the timer thread is
/// process-global).
pub fn block_on<F: Future>(future: F) -> F::Output {
    struct Parker {
        woken: Mutex<bool>,
        cv: Condvar,
    }
    impl Wake for Parker {
        fn wake(self: Arc<Self>) {
            *self.woken.lock().expect("parker poisoned") = true;
            self.cv.notify_one();
        }
    }
    let parker = Arc::new(Parker {
        woken: Mutex::new(false),
        cv: Condvar::new(),
    });
    let waker = Waker::from(parker.clone());
    let mut cx = Context::from_waker(&waker);
    let mut future = std::pin::pin!(future);
    loop {
        if let Poll::Ready(out) = future.as_mut().poll(&mut cx) {
            return out;
        }
        let mut woken = parker.woken.lock().expect("parker poisoned");
        while !*woken {
            woken = parker.cv.wait(woken).expect("parker poisoned");
        }
        *woken = false;
    }
}

// ---------------------------------------------------------------------
// Timer: one process-global thread, a deadline min-heap, timed condvar
// waits. A sleeping future registers a **weak** handle to its waker slot
// and occupies no executor thread until fired. Weakness is load-bearing:
// the timer outlives every `Runtime`, so a strong registration would let
// a late fire wake a task slot belonging to a dead executor; instead the
// registration dies with its `Sleep` future and the fire is a no-op.

/// The waker slot a pending [`Sleep`] shares with the timer thread. The
/// future owns the only strong reference — dropping it (task completed,
/// panicked, or its runtime dropped) invalidates the registration.
struct SleepShared {
    waker: Mutex<Option<Waker>>,
}

impl SleepShared {
    /// Takes and fires the registered waker, if any — the single fire
    /// path shared by the timer thread and the `memtree_loom` model
    /// suite's drop-vs-fire race.
    fn fire(&self) {
        if let Some(waker) = self.waker.lock().expect("waker slot poisoned").take() {
            waker.wake();
        }
    }
}

struct TimerEntry {
    deadline: Instant,
    handle: Weak<SleepShared>,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the nearest deadline.
        other.deadline.cmp(&self.deadline)
    }
}

// Wall-clock driven and process-global: deliberately `std::sync`, never
// the façade — the model has no clock (see the `sync` module docs).
struct Timer {
    entries: std::sync::Mutex<BinaryHeap<TimerEntry>>,
    changed: std::sync::Condvar,
}

static TIMER: OnceLock<&'static Timer> = OnceLock::new();

fn timer() -> &'static Timer {
    TIMER.get_or_init(|| {
        let timer: &'static Timer = Box::leak(Box::new(Timer {
            entries: std::sync::Mutex::new(BinaryHeap::new()),
            changed: std::sync::Condvar::new(),
        }));
        std::thread::Builder::new()
            .name("minitok-timer".into())
            .spawn(move || loop {
                let mut entries = timer.entries.lock().expect("timer heap poisoned");
                let now = Instant::now();
                while entries.peek().is_some_and(|e| e.deadline <= now) {
                    let entry = entries.pop().expect("peeked entry");
                    drop(entries);
                    // A registration whose `Sleep` is gone fails to
                    // upgrade: nobody gets woken, in particular no task
                    // slot of an already-dropped runtime.
                    if let Some(shared) = entry.handle.upgrade() {
                        shared.fire();
                    }
                    entries = timer.entries.lock().expect("timer heap poisoned");
                }
                entries = match entries.peek().map(|e| e.deadline) {
                    Some(next) => {
                        let wait = next.saturating_duration_since(Instant::now());
                        timer
                            .changed
                            .wait_timeout(entries, wait)
                            .expect("timer heap poisoned")
                            .0
                    }
                    None => timer.changed.wait(entries).expect("timer heap poisoned"),
                };
                drop(entries);
            })
            .expect("spawning the minitok timer thread");
        timer
    })
}

/// Sweeps timer registrations whose `Sleep` future is gone. Called on
/// [`Runtime`] drop; a no-op when the timer was never started.
fn prune_dead_timers() {
    if let Some(t) = TIMER.get() {
        let mut entries = t.entries.lock().expect("timer heap poisoned");
        if entries.iter().any(|e| Weak::strong_count(&e.handle) == 0) {
            let live: BinaryHeap<TimerEntry> = entries
                .drain()
                .filter(|e| Weak::strong_count(&e.handle) > 0)
                .collect();
            *entries = live;
        }
    }
}

/// Live timer registrations with deadlines beyond `now + horizon` — a
/// diagnostic for embeddings and tests (the process-global timer serves
/// every runtime, so counts close to now are inherently racy; a far
/// horizon isolates a known long registration).
pub fn pending_timers_beyond(horizon: Duration) -> usize {
    match TIMER.get() {
        None => 0,
        Some(t) => {
            let cutoff = Instant::now() + horizon;
            t.entries
                .lock()
                .expect("timer heap poisoned")
                .iter()
                .filter(|e| e.deadline > cutoff && Weak::strong_count(&e.handle) > 0)
                .count()
        }
    }
}

/// Future returned by [`sleep`].
pub struct Sleep {
    deadline: Instant,
    /// The registration this future shares with the timer thread, created
    /// on the first pending poll. Owning the only strong reference ties
    /// the registration's validity to this future's lifetime.
    shared: Option<Arc<SleepShared>>,
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if Instant::now() >= this.deadline {
            return Poll::Ready(());
        }
        match &this.shared {
            // Already registered: refresh the waker in place (wakers may
            // differ between polls — spurious wakes, task migration).
            Some(shared) => {
                *shared.waker.lock().expect("waker slot poisoned") = Some(cx.waker().clone());
            }
            None => {
                let shared = Arc::new(SleepShared {
                    waker: Mutex::new(Some(cx.waker().clone())),
                });
                let t = timer();
                t.entries
                    .lock()
                    .expect("timer heap poisoned")
                    .push(TimerEntry {
                        deadline: this.deadline,
                        handle: Arc::downgrade(&shared),
                    });
                this.shared = Some(shared);
                t.changed.notify_one();
            }
        }
        Poll::Pending
    }
}

/// Completes once `duration` has elapsed, without occupying an executor
/// thread while waiting.
pub fn sleep(duration: Duration) -> Sleep {
    Sleep {
        deadline: Instant::now() + duration,
        shared: None,
    }
}

/// Future returned by [`yield_now`].
pub struct YieldNow {
    yielded: bool,
}

impl Future for YieldNow {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// Yields to the executor once: reschedules the task to the back of the
/// run queue — the cooperative point an IO-simulating payload inserts
/// between chunks.
pub fn yield_now() -> YieldNow {
    YieldNow { yielded: false }
}

/// Handles into the executor's internals for the `memtree_loom` model
/// suite: a run queue and tasks it can drive from minloom threads,
/// without the wall-clock timer or real worker pools.
#[cfg(memtree_loom)]
pub mod model_api {
    use super::*;

    /// A bare run queue the model drives directly: spawn tasks onto it,
    /// run worker loops from minloom threads, close it to stop them.
    pub struct ModelQueue {
        queue: Arc<Queue>,
    }

    impl ModelQueue {
        /// An open, empty run queue.
        #[allow(clippy::new_without_default)]
        pub fn new() -> ModelQueue {
            ModelQueue {
                queue: Arc::new(Queue {
                    ready: Mutex::new(QueueState {
                        tasks: VecDeque::new(),
                        closed: false,
                    }),
                    available: Condvar::new(),
                    panicked: AtomicUsize::new(0),
                }),
            }
        }

        /// Spawns `future` as a task and schedules it; the returned
        /// handle can re-wake the task externally (a stale-waker stand-in).
        pub fn spawn<F>(&self, future: F) -> ModelTask
        where
            F: Future<Output = ()> + Send + 'static,
        {
            let task = Arc::new(Task {
                future: Mutex::new(Some(Box::pin(future))),
                queue: self.queue.clone(),
                queued: AtomicBool::new(false),
            });
            task.schedule();
            ModelTask { task }
        }

        /// Runs [`worker_loop`] on the calling (minloom) thread until the
        /// queue is closed.
        pub fn run_worker(&self) {
            worker_loop(&self.queue);
        }

        /// Closes the queue (workers drain out), mirroring the first half
        /// of `Runtime::drop`.
        pub fn close(&self) {
            {
                let mut state = self.queue.ready.lock().expect("run queue poisoned");
                state.closed = true;
                state.tasks.clear();
            }
            self.queue.available.notify_all();
        }

        /// Panicked-task count, as [`Runtime::panicked_tasks`].
        pub fn panicked(&self) -> usize {
            self.queue.panicked.load(Ordering::Acquire)
        }
    }

    /// External handle to a spawned task.
    pub struct ModelTask {
        task: Arc<Task>,
    }

    impl ModelTask {
        /// Wakes the task as a foreign waker clone would: schedule unless
        /// already queued.
        pub fn wake(&self) {
            self.task.schedule();
        }
    }

    /// A sleep registration the model can race: fire (timer path) against
    /// drop (future cancelled) — the waker must fire at most once and a
    /// dropped registration must never fire.
    pub struct ModelSleep {
        shared: Arc<SleepShared>,
    }

    impl ModelSleep {
        /// Registers `waker` the way a pending `Sleep::poll` does.
        pub fn new(waker: Waker) -> ModelSleep {
            ModelSleep {
                shared: Arc::new(SleepShared {
                    waker: Mutex::new(Some(waker)),
                }),
            }
        }

        /// A weak handle standing in for the timer heap's entry.
        pub fn timer_handle(&self) -> ModelTimerHandle {
            ModelTimerHandle(Arc::downgrade(&self.shared))
        }
    }

    /// The timer heap's view of a registration: weak, so a dropped
    /// `Sleep` invalidates it.
    pub struct ModelTimerHandle(Weak<SleepShared>);

    impl ModelTimerHandle {
        /// Fires exactly as the timer thread does — a no-op when the
        /// registration is already dropped.
        pub fn fire(&self) {
            if let Some(shared) = self.0.upgrade() {
                shared.fire();
            }
        }
    }
}

// Wall-clock tests; the loom build runs the exhaustive model suite in
// memtree_runtime/tests/model/minitok.rs instead.
#[cfg(all(test, not(memtree_loom)))]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn block_on_drives_a_plain_future() {
        assert_eq!(block_on(async { 6 * 7 }), 42);
    }

    #[test]
    fn spawned_tasks_complete_on_workers() {
        let rt = Runtime::new(2);
        let (tx, rx) = mpsc::channel();
        for k in 0..16 {
            let tx = tx.clone();
            rt.spawn(async move {
                yield_now().await;
                tx.send(k).expect("receiver alive");
            });
        }
        drop(tx);
        let mut got: Vec<i32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn sleeps_overlap_on_one_worker_thread() {
        // 8 concurrent 40 ms sleeps on a single-threaded runtime finish
        // together, not serially — sleeping occupies no worker.
        let rt = Runtime::new(1);
        let (tx, rx) = mpsc::channel();
        let start = Instant::now();
        for _ in 0..8 {
            let tx = tx.clone();
            rt.spawn(async move {
                sleep(Duration::from_millis(40)).await;
                tx.send(()).expect("receiver alive");
            });
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 8);
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(200),
            "sleeps serialised: {elapsed:?}"
        );
    }

    #[test]
    fn sleep_waits_at_least_its_duration() {
        let start = Instant::now();
        block_on(sleep(Duration::from_millis(25)));
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn panicked_task_is_counted_not_fatal() {
        let rt = Runtime::new(1);
        let (tx, rx) = mpsc::channel();
        rt.spawn(async { panic!("injected task panic") });
        rt.spawn(async move {
            tx.send(()).expect("receiver alive");
        });
        rx.recv_timeout(Duration::from_secs(5))
            .expect("the worker survived the panicking task");
        assert_eq!(rt.panicked_tasks(), 1);
    }

    #[test]
    fn dropping_the_runtime_joins_workers() {
        let rt = Runtime::new(4);
        rt.spawn(async {
            sleep(Duration::from_millis(5)).await;
        });
        drop(rt); // must not hang or panic
    }

    /// A waker that records having fired — stands in for the task slot a
    /// stale timer registration would wake.
    struct Flag(AtomicBool);

    impl Wake for Flag {
        fn wake(self: Arc<Self>) {
            self.0.store(true, Ordering::Release);
        }
    }

    #[test]
    fn dropped_sleep_never_fires_its_waker() {
        // The regression: the timer used to hold wakers strongly, so a
        // Sleep dropped before its deadline (task dropped with its
        // runtime) still woke a dead task slot when the deadline passed.
        let fired = Arc::new(Flag(AtomicBool::new(false)));
        let waker = Waker::from(fired.clone());
        let mut cx = Context::from_waker(&waker);
        let mut fut = Box::pin(sleep(Duration::from_millis(30)));
        assert!(fut.as_mut().poll(&mut cx).is_pending());
        drop(fut); // the registration dies with the future
        std::thread::sleep(Duration::from_millis(80)); // deadline passes
        assert!(
            !fired.0.load(Ordering::Acquire),
            "a dropped Sleep's waker fired after the deadline"
        );

        // Control: the same registration kept alive does fire.
        let fired = Arc::new(Flag(AtomicBool::new(false)));
        let waker = Waker::from(fired.clone());
        let mut cx = Context::from_waker(&waker);
        let mut fut = Box::pin(sleep(Duration::from_millis(20)));
        assert!(fut.as_mut().poll(&mut cx).is_pending());
        let deadline = Instant::now() + Duration::from_secs(5);
        while !fired.0.load(Ordering::Acquire) {
            assert!(Instant::now() < deadline, "live Sleep never woken");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn dropping_the_runtime_prunes_dead_timer_entries() {
        // An hour-long sleep is unambiguous in the process-global heap:
        // no other test registers anything within half an hour of it.
        let horizon = Duration::from_secs(1800);
        let rt = Runtime::new(1);
        rt.spawn(async {
            sleep(Duration::from_secs(3600)).await;
        });
        let deadline = Instant::now() + Duration::from_secs(5);
        while pending_timers_beyond(horizon) == 0 {
            assert!(
                Instant::now() < deadline,
                "the spawned sleep never reached the timer"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        drop(rt); // clears tasks → drops the Sleep → kills the registration
        assert_eq!(
            pending_timers_beyond(horizon),
            0,
            "runtime drop left a live long-deadline registration behind"
        );
    }

    #[test]
    fn wake_during_poll_is_not_lost() {
        // A future whose waker fires from another thread mid-poll must
        // still be re-polled (the queued/pending handoff in the worker).
        let rt = Runtime::new(2);
        let (tx, rx) = mpsc::channel();
        for _ in 0..64 {
            let tx = tx.clone();
            rt.spawn(async move {
                for _ in 0..8 {
                    sleep(Duration::from_micros(50)).await;
                    yield_now().await;
                }
                tx.send(()).expect("receiver alive");
            });
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 64);
    }
}
