//! Model atomics with a per-location store history and vector-clock
//! visibility: a weak load may observe any sufficiently-recent store the
//! C11 coherence and happens-before rules allow, and each such choice is
//! a DFS branch.
//!
//! Subset scope (documented divergences from the full C11 model):
//! - `SeqCst` is approximated as "read the latest store in modification
//!   order" plus acquire/release — the same practical approximation loom
//!   ships. No global SC order is tracked beyond modification order.
//! - The store history is capped (Config::store_history): loads cannot
//!   observe stores older than the cap. This bounds branching; real
//!   executions that need deeper staleness are out of scope.
//! - `compare_exchange_weak` never fails spuriously (every call site in
//!   this repo loops, so spurious failure adds schedules without adding
//!   observable outcomes).

use crate::exec::{current, VClock};
use std::sync::{Mutex as StdMutex, OnceLock, PoisonError};

pub use std::sync::atomic::Ordering;

struct StoreEvent {
    value: u64,
    /// Position in modification order (0 = the initial value).
    seq: u64,
    tid: usize,
    /// The storing thread's own clock component at the store — used for
    /// the must-read rule: a load whose thread has already observed the
    /// storer past this point may not read anything older.
    stamp: u64,
    /// Clock released with the store (joined into acquiring loaders).
    clock: VClock,
    release: bool,
}

struct LocState {
    gen: u64,
    stores: Vec<StoreEvent>,
    /// Per-thread coherence floor: the oldest seq this thread may still
    /// read (monotone — reads never go backwards in modification order).
    floor: Vec<u64>,
    next_seq: u64,
}

impl LocState {
    fn fresh(gen: u64, init: u64) -> LocState {
        LocState {
            gen,
            stores: vec![StoreEvent {
                value: init,
                seq: 0,
                tid: 0,
                stamp: 0,
                clock: VClock::default(),
                release: true,
            }],
            floor: Vec::new(),
            next_seq: 1,
        }
    }

    fn floor_of(&mut self, tid: usize) -> u64 {
        if self.floor.len() <= tid {
            self.floor.resize(tid + 1, 0);
        }
        self.floor[tid]
    }
}

/// One model atomic cell. `const fn new` so `static` atomics work; the
/// generation stamp resets the state between schedules.
pub(crate) struct Loc {
    state: OnceLock<StdMutex<LocState>>,
    init: u64,
}

fn is_acquire(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

impl Loc {
    pub(crate) const fn new(init: u64) -> Loc {
        Loc {
            state: OnceLock::new(),
            init,
        }
    }

    fn with_state<R>(&self, gen: u64, f: impl FnOnce(&mut LocState) -> R) -> R {
        let m = self
            .state
            .get_or_init(|| StdMutex::new(LocState::fresh(gen, self.init)));
        let mut st = m.lock().unwrap_or_else(PoisonError::into_inner);
        if st.gen != gen {
            *st = LocState::fresh(gen, self.init);
        }
        f(&mut st)
    }

    pub(crate) fn load(&self, order: Ordering) -> u64 {
        let (exec, tid) = current();
        exec.op_point(tid);
        let history = exec.store_history as u64;
        let mut s = exec.sched_lock();
        let clock = s.threads[tid].clock.clone();
        // Candidates = kept stores at or above every applicable floor:
        // coherence (this thread's prior reads), must-read (stores this
        // thread already observed via happens-before), history cap, and
        // latest-only for SeqCst.
        let cands: Vec<(u64, u64, Option<VClock>)> = self.with_state(exec.generation, |st| {
            let floor = st.floor_of(tid);
            let latest = st.next_seq - 1;
            let oldest_kept = latest.saturating_sub(history.saturating_sub(1));
            let mut must_floor = 0;
            for ev in &st.stores {
                if ev.stamp > 0 && clock.get(ev.tid) >= ev.stamp && ev.seq > must_floor {
                    must_floor = ev.seq;
                }
            }
            let lo = floor
                .max(must_floor)
                .max(if matches!(order, Ordering::SeqCst) {
                    latest
                } else {
                    oldest_kept
                });
            let mut cands: Vec<(u64, u64, Option<VClock>)> = st
                .stores
                .iter()
                .filter(|ev| ev.seq >= lo)
                .map(|ev| {
                    (
                        ev.seq,
                        ev.value,
                        if ev.release {
                            Some(ev.clock.clone())
                        } else {
                            None
                        },
                    )
                })
                .collect();
            // Latest first: alternative 0 is the "expected" value, so the
            // first DFS pass mirrors an SC execution.
            cands.sort_by_key(|c| std::cmp::Reverse(c.0));
            cands
        });
        // choose() takes only the explorer lock; safe under the sched lock.
        let pick = exec.choose(cands.len());
        let (seq, value, rel_clock) = cands.into_iter().nth(pick).expect("candidate exists");
        self.with_state(exec.generation, |st| {
            let f = st.floor_of(tid);
            if seq > f {
                st.floor[tid] = seq;
            }
        });
        if is_acquire(order) {
            if let Some(rc) = &rel_clock {
                s.threads[tid].clock.join(rc);
            }
        }
        value
    }

    pub(crate) fn store(&self, value: u64, order: Ordering) {
        let (exec, tid) = current();
        exec.op_point(tid);
        let history = exec.store_history;
        let s = exec.sched_lock();
        let clock = s.threads[tid].clock.clone();
        let stamp = clock.get(tid);
        self.with_state(exec.generation, |st| {
            let seq = st.next_seq;
            st.next_seq += 1;
            st.stores.push(StoreEvent {
                value,
                seq,
                tid,
                stamp,
                clock: clock.clone(),
                release: is_release(order),
            });
            let keep_from = st.stores.len().saturating_sub(history.max(1));
            st.stores.drain(..keep_from);
            let f = st.floor_of(tid);
            if seq > f {
                st.floor[tid] = seq;
            }
        });
        // A plain (non-release) store still advances this thread's clock
        // entry implicitly via op_point; nothing else to do.
        drop(s);
    }

    /// Read-modify-write: always reads the latest store in modification
    /// order (RMW atomicity), acquires its clock if it was a release and
    /// we acquire, and appends the new value.
    pub(crate) fn rmw(&self, order: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
        let (exec, tid) = current();
        exec.op_point(tid);
        let history = exec.store_history;
        let mut s = exec.sched_lock();
        let clock_snapshot = s.threads[tid].clock.clone();
        let (old, acquired) = self.with_state(exec.generation, |st| {
            let last = st.stores.last().expect("history never empty");
            let old = last.value;
            let acquired = if last.release && is_acquire(order) {
                Some(last.clock.clone())
            } else {
                None
            };
            let new = f(old);
            let seq = st.next_seq;
            st.next_seq += 1;
            // The RMW's released clock includes what it just acquired.
            let mut released = clock_snapshot.clone();
            if let Some(a) = &acquired {
                released.join(a);
            }
            let stamp = released.get(tid);
            st.stores.push(StoreEvent {
                value: new,
                seq,
                tid,
                stamp,
                clock: released,
                release: is_release(order),
            });
            let keep_from = st.stores.len().saturating_sub(history.max(1));
            st.stores.drain(..keep_from);
            let fl = st.floor_of(tid);
            if seq > fl {
                st.floor[tid] = seq;
            }
            (old, acquired)
        });
        if let Some(a) = acquired {
            s.threads[tid].clock.join(&a);
        }
        old
    }

    /// Compare-exchange: success is an RMW; failure is a load of the
    /// latest value under the failure ordering.
    pub(crate) fn cas(
        &self,
        expected: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        let (exec, tid) = current();
        exec.op_point(tid);
        let history = exec.store_history;
        let mut s = exec.sched_lock();
        let clock_snapshot = s.threads[tid].clock.clone();
        let (result, acquired) = self.with_state(exec.generation, |st| {
            let last = st.stores.last().expect("history never empty");
            let old = last.value;
            let last_release_clock = if last.release {
                Some(last.clock.clone())
            } else {
                None
            };
            let last_seq = last.seq;
            if old == expected {
                let acquired = if is_acquire(success) {
                    last_release_clock
                } else {
                    None
                };
                let seq = st.next_seq;
                st.next_seq += 1;
                let mut released = clock_snapshot.clone();
                if let Some(a) = &acquired {
                    released.join(a);
                }
                let stamp = released.get(tid);
                st.stores.push(StoreEvent {
                    value: new,
                    seq,
                    tid,
                    stamp,
                    clock: released,
                    release: is_release(success),
                });
                let keep_from = st.stores.len().saturating_sub(history.max(1));
                st.stores.drain(..keep_from);
                let fl = st.floor_of(tid);
                if seq > fl {
                    st.floor[tid] = seq;
                }
                (Ok(old), acquired)
            } else {
                let acquired = if is_acquire(failure) {
                    last_release_clock
                } else {
                    None
                };
                let fl = st.floor_of(tid);
                if last_seq > fl {
                    st.floor[tid] = last_seq;
                }
                (Err(old), acquired)
            }
        });
        if let Some(a) = acquired {
            s.threads[tid].clock.join(&a);
        }
        result
    }
}

macro_rules! atomic_type {
    ($name:ident, $prim:ty) => {
        /// Model replacement for the std atomic of the same name.
        pub struct $name {
            loc: Loc,
        }

        impl $name {
            pub const fn new(v: $prim) -> Self {
                $name {
                    loc: Loc::new(v as u64),
                }
            }

            pub fn load(&self, order: Ordering) -> $prim {
                self.loc.load(order) as $prim
            }

            pub fn store(&self, v: $prim, order: Ordering) {
                self.loc.store(v as u64, order)
            }

            pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                self.loc.rmw(order, |_| v as u64) as $prim
            }

            pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                self.loc
                    .rmw(order, |old| (old as $prim).wrapping_add(v) as u64) as $prim
            }

            pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                self.loc
                    .rmw(order, |old| (old as $prim).wrapping_sub(v) as u64) as $prim
            }

            pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                self.loc.rmw(order, |old| (old as $prim).max(v) as u64) as $prim
            }

            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                self.loc
                    .cas(current as u64, new as u64, success, failure)
                    .map(|v| v as $prim)
                    .map_err(|v| v as $prim)
            }

            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                // Never fails spuriously; see module docs.
                self.compare_exchange(current, new, success, failure)
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(Default::default())
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct(stringify!($name)).finish_non_exhaustive()
            }
        }
    };
}

atomic_type!(AtomicUsize, usize);
atomic_type!(AtomicU64, u64);

/// Model replacement for `std::sync::atomic::AtomicBool`.
pub struct AtomicBool {
    loc: Loc,
}

impl AtomicBool {
    pub const fn new(v: bool) -> Self {
        AtomicBool {
            loc: Loc::new(v as u64),
        }
    }

    pub fn load(&self, order: Ordering) -> bool {
        self.loc.load(order) != 0
    }

    pub fn store(&self, v: bool, order: Ordering) {
        self.loc.store(v as u64, order)
    }

    pub fn swap(&self, v: bool, order: Ordering) -> bool {
        self.loc.rmw(order, |_| v as u64) != 0
    }

    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        self.loc
            .cas(current as u64, new as u64, success, failure)
            .map(|v| v != 0)
            .map_err(|v| v != 0)
    }
}

impl Default for AtomicBool {
    fn default() -> Self {
        Self::new(false)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicBool").finish_non_exhaustive()
    }
}
