//! The controlling scheduler: serialized model threads, a DFS explorer
//! over every nondeterministic choice (which thread runs next, which
//! store a weak load observes, which timed wait fires), and the replay
//! machinery for failing schedules.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, Once, PoisonError};

/// Exploration limits and replay input for [`model_with`].
#[derive(Clone, Debug)]
pub struct Config {
    /// Maximum context switches away from a still-runnable thread per
    /// schedule (CHESS-style context bounding). `None` explores every
    /// interleaving — right for tiny models; larger models set a small
    /// bound to keep the DFS polynomial.
    pub preemption_bound: Option<usize>,
    /// Hard cap on explored schedules. Exceeding it panics: the model is
    /// too big to call "enumerated", so shrink it or bound preemptions.
    pub max_iterations: u64,
    /// Hard cap on scheduling points within one schedule (runaway-loop
    /// guard inside a single interleaving).
    pub max_ops: u64,
    /// Maximum live model threads per schedule.
    pub max_threads: usize,
    /// Store-history depth per atomic location: how many recent stores a
    /// weak load may still observe. Older stores are forgotten (a
    /// documented under-approximation that bounds load branching).
    pub store_history: usize,
    /// Replay exactly one schedule instead of exploring: the seed string
    /// a failing run printed. Also read from `MINLOOM_REPLAY` when unset.
    pub replay_seed: Option<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: None,
            max_iterations: 2_000_000,
            max_ops: 200_000,
            max_threads: 16,
            store_history: 3,
            replay_seed: std::env::var("MINLOOM_REPLAY").ok(),
        }
    }
}

impl Config {
    /// Default limits with a preemption bound — the usual configuration
    /// for models with more than a handful of scheduling points.
    pub fn with_preemption_bound(bound: usize) -> Self {
        Config {
            preemption_bound: Some(bound),
            ..Config::default()
        }
    }
}

/// A vector clock over model-thread ids: `clock[t]` counts thread `t`'s
/// scheduling points observed (directly or through synchronization).
#[derive(Clone, Debug, Default)]
pub(crate) struct VClock(Vec<u64>);

impl VClock {
    pub(crate) fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    pub(crate) fn bump(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(&other.0) {
            *mine = (*mine).max(*theirs);
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    Runnable,
    /// Parked on a mutex/condvar/join. `timed` waits may additionally be
    /// woken by the scheduler itself (a timeout firing is one of the
    /// explored alternatives).
    Blocked {
        timed: bool,
    },
    Finished,
}

pub(crate) struct TState {
    pub(crate) status: Status,
    pub(crate) clock: VClock,
    /// Threads blocked in `JoinHandle::join` on this one.
    pub(crate) join_waiters: Vec<usize>,
}

pub(crate) struct Sched {
    pub(crate) threads: Vec<TState>,
    /// The one thread currently granted the run token, if any.
    active: Option<usize>,
    /// Set when the controller tears an iteration down early: every
    /// parked thread unwinds with an [`AbortToken`] panic.
    abort: bool,
    last_running: Option<usize>,
    preemptions: usize,
    ops: u64,
    /// First user panic observed this iteration (an assertion failure in
    /// the model closure), kept for resume after the seed is printed.
    first_panic: Option<Box<dyn Any + Send>>,
}

/// One recorded nondeterministic decision: alternative `taken` of
/// `total`. The sequence of these is the schedule — and the replay seed.
#[derive(Clone, Copy, Debug)]
struct Choice {
    taken: usize,
    total: usize,
}

struct Explorer {
    path: Vec<Choice>,
    cursor: usize,
}

/// Panic payload used to unwind parked model threads on teardown; never
/// reported as a model failure.
pub(crate) struct AbortToken;

/// Per-iteration generation stamp: lets lazily-initialized location
/// state (including `static` atomics) detect that it belongs to a
/// previous schedule and reset itself.
static GENERATION: AtomicU64 = AtomicU64::new(1);

pub(crate) struct Execution {
    sched: Mutex<Sched>,
    cv: Condvar,
    explorer: Mutex<Explorer>,
    os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    pub(crate) generation: u64,
    pub(crate) store_history: usize,
    max_ops: u64,
    max_threads: usize,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The execution + model-thread id behind the calling thread, or a loud
/// panic: minloom sync primitives only work inside [`model`].
pub(crate) fn current() -> (Arc<Execution>, usize) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("minloom sync primitive used outside minloom::model")
    })
}

fn unpoison<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

impl Execution {
    fn new(config: &Config, path: Vec<Choice>) -> Execution {
        Execution {
            sched: Mutex::new(Sched {
                threads: Vec::new(),
                active: None,
                abort: false,
                last_running: None,
                preemptions: 0,
                ops: 0,
                first_panic: None,
            }),
            cv: Condvar::new(),
            explorer: Mutex::new(Explorer { path, cursor: 0 }),
            os_handles: Mutex::new(Vec::new()),
            generation: GENERATION.fetch_add(1, StdOrdering::Relaxed),
            store_history: config.store_history,
            max_ops: config.max_ops,
            max_threads: config.max_threads,
        }
    }

    pub(crate) fn sched_lock(&self) -> MutexGuard<'_, Sched> {
        unpoison(self.sched.lock())
    }

    /// Resolves one `n`-way nondeterministic decision against the DFS
    /// path: replayed while the cursor is inside the recorded prefix,
    /// alternative 0 (and a fresh record) beyond it.
    pub(crate) fn choose(&self, n: usize) -> usize {
        if n <= 1 {
            return 0;
        }
        let mut ex = unpoison(self.explorer.lock());
        if ex.cursor < ex.path.len() {
            let c = ex.path[ex.cursor];
            ex.cursor += 1;
            c.taken.min(n - 1)
        } else {
            ex.path.push(Choice { taken: 0, total: n });
            ex.cursor += 1;
            0
        }
    }

    /// One scheduling point: hand the token back to the controller and
    /// park until it is granted again, then stamp the thread's clock.
    /// Every sync-object operation calls this first, which is what makes
    /// each of them a potential context switch.
    pub(crate) fn op_point(&self, tid: usize) {
        if std::thread::panicking() {
            // Called from a Drop during unwinding (e.g. a MutexGuard):
            // never park a panicking thread, the controller is already
            // tearing the iteration down.
            return;
        }
        let mut s = self.sched_lock();
        s.ops += 1;
        if s.ops > self.max_ops {
            drop(s);
            panic!(
                "minloom: a single schedule exceeded {} scheduling points (runaway loop?)",
                self.max_ops
            );
        }
        s.active = None;
        self.cv.notify_all();
        let mut s = self.wait_turn(s, tid);
        s.threads[tid].clock.bump(tid);
    }

    /// Parks until the controller grants `tid` the token (or aborts).
    fn wait_turn<'a>(&self, mut s: MutexGuard<'a, Sched>, tid: usize) -> MutexGuard<'a, Sched> {
        loop {
            if s.abort {
                s.active = None;
                self.cv.notify_all();
                drop(s);
                std::panic::panic_any(AbortToken);
            }
            if s.active == Some(tid) && s.threads[tid].status == Status::Runnable {
                return s;
            }
            s = unpoison(self.cv.wait(s));
        }
    }

    /// Parks a thread that has just marked itself [`Status::Blocked`]
    /// (under the sched lock, which the caller passes in) until another
    /// thread wakes it and the controller grants it the token.
    pub(crate) fn park(&self, mut s: MutexGuard<'_, Sched>, tid: usize) {
        if std::thread::panicking() {
            // Teardown: a Drop handler mid-unwind hit a held lock. Never
            // block (the holder may be parked) and never re-panic (that
            // would abort the process); undo the Blocked mark and let the
            // caller's loop spin — the panic hook has already woken every
            // holder, so the lock frees shortly.
            s.threads[tid].status = Status::Runnable;
            drop(s);
            std::thread::yield_now();
            return;
        }
        s.active = None;
        self.cv.notify_all();
        let _s = self.wait_turn(s, tid);
    }

    /// Registers a model thread and spawns its OS carrier. The carrier
    /// parks until first scheduled, runs `body`, then runs the finish
    /// protocol. `body`'s panics (other than teardown aborts) become the
    /// iteration's failure.
    pub(crate) fn spawn_thread(
        self: &Arc<Self>,
        parent: Option<usize>,
        name: Option<String>,
        body: impl FnOnce() -> Option<Box<dyn Any + Send>> + Send + 'static,
    ) -> usize {
        let tid = {
            let mut s = self.sched_lock();
            let mut clock = match parent {
                Some(p) => s.threads[p].clock.clone(),
                None => VClock::default(),
            };
            let tid = s.threads.len();
            if tid >= self.max_threads {
                // Drop the sched lock before panicking: the panic hook
                // re-takes it to begin teardown.
                drop(s);
                panic!(
                    "minloom: model spawned more than {} threads",
                    self.max_threads
                );
            }
            clock.bump(tid);
            s.threads.push(TState {
                status: Status::Runnable,
                clock,
                join_waiters: Vec::new(),
            });
            tid
        };
        let exec = self.clone();
        let handle = std::thread::Builder::new()
            .name(name.unwrap_or_else(|| format!("minloom-{tid}")))
            .spawn(move || {
                CURRENT.with(|c| *c.borrow_mut() = Some((exec.clone(), tid)));
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    // Wait to be scheduled for the first time.
                    let s = exec.sched_lock();
                    drop(exec.wait_turn(s, tid));
                    body()
                }));
                let mut s = exec.sched_lock();
                s.threads[tid].status = Status::Finished;
                let waiters = std::mem::take(&mut s.threads[tid].join_waiters);
                for w in waiters {
                    if s.threads[w].status != Status::Finished {
                        s.threads[w].status = Status::Runnable;
                    }
                }
                match outcome {
                    // `body` may return a user panic it caught itself
                    // (thread wrappers route payloads here so typed
                    // results stay with their JoinHandle).
                    Ok(Some(p)) => {
                        if s.first_panic.is_none() {
                            s.first_panic = Some(p);
                        }
                    }
                    Ok(None) => {}
                    Err(p) => {
                        // Teardown aborts are ours, not a model failure.
                        if !p.is::<AbortToken>() && s.first_panic.is_none() {
                            s.first_panic = Some(p);
                        }
                    }
                }
                s.active = None;
                exec.cv.notify_all();
            })
            .expect("spawning a minloom carrier thread");
        unpoison(self.os_handles.lock()).push(handle);
        tid
    }
}

/// Installs (once, process-wide) a panic hook that begins iteration
/// teardown the moment a model thread panics — *before* its unwind runs
/// Drop handlers. Those handlers may acquire model locks (a channel
/// endpoint's `Drop` does); the threads holding them are parked and only
/// release on abort, so teardown must start at panic time, not when the
/// carrier finally records the payload. Non-model panics pass through to
/// the previous hook untouched; [`AbortToken`] unwinds are silent.
fn install_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<AbortToken>() {
                return;
            }
            let in_model = CURRENT.with(|c| c.borrow().clone());
            if let Some((exec, _tid)) = in_model {
                // try_lock with bounded retries, never a blocking lock:
                // if the panicking thread itself holds the sched lock (an
                // internal-invariant panic), a lock here would deadlock.
                // Skipping the early abort then is safe — the carrier's
                // finish protocol still reports the panic.
                for _ in 0..64 {
                    match exec.sched.try_lock() {
                        Ok(s) => {
                            abort_all(&exec, s);
                            break;
                        }
                        Err(std::sync::TryLockError::Poisoned(p)) => {
                            abort_all(&exec, p.into_inner());
                            break;
                        }
                        Err(std::sync::TryLockError::WouldBlock) => {
                            std::thread::yield_now();
                        }
                    }
                }
            }
            prev(info);
        }));
    });
}

enum Outcome {
    Success,
    Panic(Box<dyn Any + Send>),
    Deadlock(String),
}

/// Runs one schedule to completion and returns its outcome plus the
/// (possibly extended) choice path.
fn run_iteration<F>(config: &Config, f: Arc<F>, path: Vec<Choice>) -> (Outcome, Vec<Choice>)
where
    F: Fn() + Send + Sync + 'static,
{
    let exec = Arc::new(Execution::new(config, path));
    let f0 = f.clone();
    exec.spawn_thread(None, Some("minloom-0".into()), move || {
        f0();
        None
    });

    let outcome = loop {
        let mut s = exec.sched_lock();
        while s.active.is_some() {
            s = unpoison(exec.cv.wait(s));
        }
        if let Some(p) = s.first_panic.take() {
            abort_all(&exec, s);
            break Outcome::Panic(p);
        }
        if s.abort {
            // The panic hook started teardown before the payload reached
            // us (the panicking thread is still unwinding, possibly
            // through façade locks). Wait for every carrier to run its
            // finish protocol, then take the payload it recorded.
            while !s.threads.iter().all(|t| t.status == Status::Finished) {
                s = unpoison(exec.cv.wait(s));
            }
            let p = s
                .first_panic
                .take()
                .unwrap_or_else(|| Box::new("minloom: a model thread panicked during teardown"));
            break Outcome::Panic(p);
        }
        // Enabled = runnable threads, plus timed waiters (firing their
        // timeout is one of the alternatives the DFS explores).
        let mut enabled: Vec<(usize, bool)> = Vec::new();
        let cont = s.last_running.filter(|&l| {
            s.threads
                .get(l)
                .is_some_and(|t| t.status == Status::Runnable)
        });
        if let Some(l) = cont {
            enabled.push((l, false));
        }
        for (t, st) in s.threads.iter().enumerate() {
            match st.status {
                Status::Runnable if Some(t) != cont => enabled.push((t, false)),
                Status::Blocked { timed: true } => enabled.push((t, true)),
                _ => {}
            }
        }
        if enabled.is_empty() {
            if s.threads.iter().all(|t| t.status == Status::Finished) {
                break Outcome::Success;
            }
            let dump: Vec<String> = s
                .threads
                .iter()
                .enumerate()
                .map(|(t, st)| format!("thread {t}: {:?}", st.status))
                .collect();
            abort_all(&exec, s);
            break Outcome::Deadlock(dump.join(", "));
        }
        // Context bounding: with the budget spent, a still-runnable
        // current thread must continue (no branch recorded).
        let budget_left = config.preemption_bound.is_none_or(|b| s.preemptions < b);
        let pick = if !budget_left && cont.is_some() {
            0
        } else {
            exec.choose(enabled.len())
        };
        let (tid, fire) = enabled[pick];
        if cont.is_some() && Some(tid) != cont {
            s.preemptions += 1;
        }
        if fire {
            // The timeout fires: the thread becomes runnable while still
            // on its wait queue — the waiting code detects the timeout by
            // finding itself still enqueued.
            s.threads[tid].status = Status::Runnable;
        }
        s.last_running = Some(tid);
        s.active = Some(tid);
        exec.cv.notify_all();
        drop(s);
    };

    for h in unpoison(exec.os_handles.lock()).drain(..) {
        let _ = h.join();
    }
    let path = std::mem::take(&mut unpoison(exec.explorer.lock()).path);
    (outcome, path)
}

fn abort_all(exec: &Execution, mut s: MutexGuard<'_, Sched>) {
    s.abort = true;
    for t in s.threads.iter_mut() {
        if t.status != Status::Finished {
            t.status = Status::Runnable;
        }
    }
    s.active = None;
    exec.cv.notify_all();
}

fn seed_of(path: &[Choice]) -> String {
    let parts: Vec<String> = path.iter().map(|c| c.taken.to_string()).collect();
    parts.join(".")
}

fn parse_seed(seed: &str) -> Vec<Choice> {
    if seed.is_empty() {
        return Vec::new();
    }
    seed.split('.')
        .map(|p| {
            let taken = p
                .trim()
                .parse::<usize>()
                .unwrap_or_else(|_| panic!("minloom: bad replay seed component {p:?}"));
            Choice {
                taken,
                total: taken + 1,
            }
        })
        .collect()
}

/// Advances the DFS path to the next unexplored schedule; false when the
/// whole space has been enumerated.
fn backtrack(path: &mut Vec<Choice>) -> bool {
    while let Some(last) = path.last_mut() {
        if last.taken + 1 < last.total {
            last.taken += 1;
            return true;
        }
        path.pop();
    }
    false
}

fn fail(outcome: Outcome, path: &[Choice], iterations: u64) -> ! {
    let seed = seed_of(path);
    eprintln!(
        "minloom: schedule {iterations} failed; replay with \
         MINLOOM_REPLAY=\"{seed}\" or minloom::replay(\"{seed}\", ..)"
    );
    match outcome {
        Outcome::Panic(p) => std::panic::resume_unwind(p),
        Outcome::Deadlock(dump) => {
            panic!("minloom: deadlock — no runnable thread ({dump}); seed \"{seed}\"")
        }
        Outcome::Success => unreachable!("fail() on a successful schedule"),
    }
}

/// Exhaustively enumerates every schedule of `f` under `config`,
/// panicking (with a replay seed on stderr) on the first assertion
/// failure or deadlock. Returns the number of schedules explored.
pub fn model_with<F>(config: Config, f: F) -> u64
where
    F: Fn() + Send + Sync + 'static,
{
    install_panic_hook();
    let f = Arc::new(f);
    if let Some(seed) = &config.replay_seed {
        let path = parse_seed(seed);
        let (outcome, path) = run_iteration(&config, f, path);
        if !matches!(outcome, Outcome::Success) {
            fail(outcome, &path, 1);
        }
        return 1;
    }
    let mut path: Vec<Choice> = Vec::new();
    let mut iterations: u64 = 0;
    loop {
        iterations += 1;
        assert!(
            iterations <= config.max_iterations,
            "minloom: exceeded the {}-schedule cap — shrink the model or set a preemption bound",
            config.max_iterations
        );
        let (outcome, new_path) = run_iteration(&config, f.clone(), path);
        if !matches!(outcome, Outcome::Success) {
            fail(outcome, &new_path, iterations);
        }
        path = new_path;
        if !backtrack(&mut path) {
            return iterations;
        }
    }
}

/// [`model_with`] under the default [`Config`] (unbounded preemptions).
pub fn model<F>(f: F) -> u64
where
    F: Fn() + Send + Sync + 'static,
{
    model_with(Config::default(), f)
}

/// Re-runs exactly the schedule a failing run printed.
pub fn replay<F>(seed: &str, f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let config = Config {
        replay_seed: Some(seed.to_string()),
        ..Config::default()
    };
    model_with(config, f);
}
