//! minloom — offline stand-in for a loom-style exhaustive-interleaving
//! model checker (DESIGN.md §1 offline-subset convention, §6.13 scope).
//!
//! Shim types (`sync::atomic::*`, `sync::{Mutex, Condvar}`, `thread`)
//! mirror the std API, but every operation yields to a controlling
//! scheduler that DFS-enumerates interleavings: which thread runs next,
//! which store a weak load observes, whether a timed wait times out.
//! [`model`] runs a closure under every schedule (subject to
//! [`Config`] bounds) and panics on the first assertion failure or
//! deadlock, printing a replay seed for [`replay`] / `MINLOOM_REPLAY`.
//!
//! Usage mirrors loom:
//!
//! ```
//! use std::sync::Arc;
//! use minloom::sync::atomic::{AtomicUsize, Ordering};
//!
//! minloom::model(|| {
//!     let n = Arc::new(AtomicUsize::new(0));
//!     let handles: Vec<_> = (0..2)
//!         .map(|_| {
//!             let n = n.clone();
//!             minloom::thread::spawn(move || {
//!                 n.fetch_add(1, Ordering::Relaxed);
//!             })
//!         })
//!         .collect();
//!     for h in handles {
//!         h.join().unwrap();
//!     }
//!     assert_eq!(n.load(Ordering::Relaxed), 2);
//! });
//! ```
//!
//! Subset scope (divergences from loom proper) is documented on
//! [`sync::atomic`] and in DESIGN.md §6.13: capped store history,
//! SeqCst-as-latest-read, no spurious CAS-weak failure, no `UnsafeCell`
//! tracking (the façaded code is `forbid(unsafe_code)`), no
//! `thread::scope`.

#![forbid(unsafe_code)]

mod atomic;
mod exec;
pub mod thread;

pub use exec::{model, model_with, replay, Config};

/// Mirrors the `std::sync` paths the façades re-export.
pub mod sync {
    pub use crate::sync_impl::{
        Condvar, LockResult, Mutex, MutexGuard, TryLockError, TryLockResult, WaitTimeoutResult,
    };

    /// Mirrors `std::sync::atomic`.
    pub mod atomic {
        pub use crate::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    }

    pub use std::sync::Arc;
}

#[path = "sync.rs"]
mod sync_impl;
