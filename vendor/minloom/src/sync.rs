//! Model `Mutex`/`Condvar`: the data still lives behind a real
//! `std::sync::Mutex` (exclusivity is enforced by the model state, so the
//! inner lock is never contended), while acquisition order, blocking, and
//! lost-wakeup behavior are scheduler choices the DFS explores.

use crate::exec::{current, Execution, Sched, Status, VClock};
use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock, PoisonError};

pub use std::sync::{LockResult, TryLockError, TryLockResult};

fn unpoison<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

struct MxState {
    gen: u64,
    locked: bool,
    /// Clock released by the last unlock, acquired by the next lock.
    clock: VClock,
    waiters: Vec<usize>,
}

/// Model replacement for `std::sync::Mutex`.
pub struct Mutex<T: ?Sized> {
    state: OnceLock<StdMutex<MxState>>,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Mutex<T> {
        Mutex {
            state: OnceLock::new(),
            inner: StdMutex::new(t),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    fn with_state<R>(&self, gen: u64, f: impl FnOnce(&mut MxState) -> R) -> R {
        let m = self.state.get_or_init(|| {
            StdMutex::new(MxState {
                gen,
                locked: false,
                clock: VClock::default(),
                waiters: Vec::new(),
            })
        });
        let mut st = unpoison(m.lock());
        if st.gen != gen {
            *st = MxState {
                gen,
                locked: false,
                clock: VClock::default(),
                waiters: Vec::new(),
            };
        }
        f(&mut st)
    }

    /// Model-level acquire under the sched lock; true on success, false
    /// after self-registering as a waiter.
    fn model_try_acquire(&self, exec: &Execution, s: &mut Sched, tid: usize) -> bool {
        let (acquired, clock) = self.with_state(exec.generation, |st| {
            if st.locked {
                if !st.waiters.contains(&tid) {
                    st.waiters.push(tid);
                }
                (false, None)
            } else {
                st.locked = true;
                (true, Some(st.clock.clone()))
            }
        });
        if let Some(c) = clock {
            s.threads[tid].clock.join(&c);
        }
        acquired
    }

    /// Model-level release under the sched lock: publish the holder's
    /// clock and make every waiter re-race (acquisition-order
    /// nondeterminism is a scheduler choice, like real futex wakeups).
    fn model_release(&self, exec: &Execution, s: &mut Sched, tid: usize) {
        let holder_clock = s.threads[tid].clock.clone();
        let woken = self.with_state(exec.generation, |st| {
            st.locked = false;
            st.clock.join(&holder_clock);
            std::mem::take(&mut st.waiters)
        });
        for w in woken {
            if s.threads[w].status != Status::Finished {
                s.threads[w].status = Status::Runnable;
            }
        }
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let (exec, tid) = current();
        exec.op_point(tid);
        loop {
            let mut s = exec.sched_lock();
            if self.model_try_acquire(&exec, &mut s, tid) {
                drop(s);
                let std = unpoison(self.inner.lock());
                return Ok(MutexGuard {
                    mutex: self,
                    std: Some(std),
                });
            }
            s.threads[tid].status = Status::Blocked { timed: false };
            exec.park(s, tid);
            // Woken by an unlock: loop and re-race for the lock.
        }
    }

    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        let (exec, tid) = current();
        exec.op_point(tid);
        let mut s = exec.sched_lock();
        let got = self.with_state(exec.generation, |st| {
            if st.locked {
                None
            } else {
                st.locked = true;
                Some(st.clock.clone())
            }
        });
        match got {
            Some(c) => {
                s.threads[tid].clock.join(&c);
                drop(s);
                let std = unpoison(self.inner.lock());
                Ok(MutexGuard {
                    mutex: self,
                    std: Some(std),
                })
            }
            None => Err(TryLockError::WouldBlock),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard over the model mutex. Dropping it is a scheduling point that
/// releases the model lock and wakes every waiter.
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
    /// `None` once defused (condvar wait consumed the guard).
    std: Option<StdMutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_ref().expect("guard defused")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std.as_mut().expect("guard defused")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.std.take().is_none() {
            // Defused by Condvar::wait: the model release already ran.
            return;
        }
        let (exec, tid) = current();
        // Unlocking is a scheduling point; op_point no-ops while
        // panicking so unwinding never parks.
        exec.op_point(tid);
        let mut s = exec.sched_lock();
        self.mutex.model_release(&exec, &mut s, tid);
    }
}

struct CvState {
    gen: u64,
    waiters: Vec<usize>,
}

/// Returned by [`Condvar::wait_timeout`]; std's equivalent cannot be
/// constructed outside std, hence our own.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Model replacement for `std::sync::Condvar`. A `wait_timeout` may be
/// woken by a notify or by the scheduler firing the timeout — both
/// alternatives are explored.
pub struct Condvar {
    state: OnceLock<StdMutex<CvState>>,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar {
            state: OnceLock::new(),
        }
    }

    fn with_state<R>(&self, gen: u64, f: impl FnOnce(&mut CvState) -> R) -> R {
        let m = self.state.get_or_init(|| {
            StdMutex::new(CvState {
                gen,
                waiters: Vec::new(),
            })
        });
        let mut st = unpoison(m.lock());
        if st.gen != gen {
            *st = CvState {
                gen,
                waiters: Vec::new(),
            };
        }
        f(&mut st)
    }

    fn wait_inner<'a, T: ?Sized>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timed: bool,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        let (exec, tid) = current();
        let mutex = guard.mutex;
        exec.op_point(tid);
        let mut s = exec.sched_lock();
        // Atomically (under the sched lock): enqueue on the condvar,
        // release the mutex, and block — no wakeup can slip between.
        self.with_state(exec.generation, |cv| cv.waiters.push(tid));
        mutex.model_release(&exec, &mut s, tid);
        drop(guard.std.take()); // defuses the guard's Drop
        s.threads[tid].status = Status::Blocked { timed };
        exec.park(s, tid);
        // Awake: a notifier removed us from the wait queue, or (timed
        // waits only) the scheduler fired the timeout and left us on it.
        let timed_out = self.with_state(exec.generation, |cv| {
            if let Some(pos) = cv.waiters.iter().position(|&w| w == tid) {
                cv.waiters.remove(pos);
                true
            } else {
                false
            }
        });
        let guard = match mutex.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        (guard, WaitTimeoutResult(timed_out))
    }

    pub fn wait<'a, T: ?Sized>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let (guard, _) = self.wait_inner(guard, false);
        Ok(guard)
    }

    /// The duration is ignored: whether the timeout fires is a scheduler
    /// choice, which covers both "woke in time" and "timed out".
    pub fn wait_timeout<'a, T: ?Sized>(
        &self,
        guard: MutexGuard<'a, T>,
        _dur: std::time::Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        Ok(self.wait_inner(guard, true))
    }

    pub fn notify_one(&self) {
        let (exec, tid) = current();
        exec.op_point(tid);
        let mut s = exec.sched_lock();
        let woken = self.with_state(exec.generation, |cv| {
            if cv.waiters.is_empty() {
                None
            } else {
                Some(cv.waiters.remove(0))
            }
        });
        if let Some(w) = woken {
            if s.threads[w].status != Status::Finished {
                s.threads[w].status = Status::Runnable;
            }
        }
    }

    pub fn notify_all(&self) {
        let (exec, tid) = current();
        exec.op_point(tid);
        let mut s = exec.sched_lock();
        let woken = self.with_state(exec.generation, |cv| std::mem::take(&mut cv.waiters));
        for w in woken {
            if s.threads[w].status != Status::Finished {
                s.threads[w].status = Status::Runnable;
            }
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}
