//! Model threads: `spawn`/`Builder`/`JoinHandle` over the execution's
//! carrier threads. A child panic (other than teardown) fails the whole
//! model immediately, loom-style, so assertions inside spawned threads
//! have teeth.

use crate::exec::{current, AbortToken, Status};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex, PoisonError};

pub use std::thread::Result;

type Slot<T> = Arc<StdMutex<Option<std::thread::Result<T>>>>;

/// Model replacement for `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    tid: usize,
    slot: Slot<T>,
}

impl<T> JoinHandle<T> {
    /// Blocks until the thread finishes, joining its final clock
    /// (everything it did happens-before the return).
    pub fn join(self) -> std::thread::Result<T> {
        let (exec, me) = current();
        exec.op_point(me);
        loop {
            let mut s = exec.sched_lock();
            if s.threads[self.tid].status == Status::Finished {
                let child_clock = s.threads[self.tid].clock.clone();
                s.threads[me].clock.join(&child_clock);
                drop(s);
                return self
                    .slot
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                    .expect("finished minloom thread left no result");
            }
            s.threads[self.tid].join_waiters.push(me);
            s.threads[me].status = Status::Blocked { timed: false };
            exec.park(s, me);
        }
    }

    /// Non-blocking finished check — a scheduling point, since polling a
    /// handle is how the stall watchdog races the workers.
    pub fn is_finished(&self) -> bool {
        let (exec, me) = current();
        exec.op_point(me);
        let s = exec.sched_lock();
        s.threads[self.tid].status == Status::Finished
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle").finish_non_exhaustive()
    }
}

/// Model replacement for `std::thread::Builder` (name only; stack size
/// is accepted and ignored).
#[derive(Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    pub fn new() -> Builder {
        Builder { name: None }
    }

    pub fn name(mut self, name: String) -> Builder {
        self.name = Some(name);
        self
    }

    pub fn stack_size(self, _size: usize) -> Builder {
        self
    }

    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (exec, parent) = current();
        let slot: Slot<T> = Arc::new(StdMutex::new(None));
        let slot2 = slot.clone();
        let tid = exec.spawn_thread(Some(parent), self.name, move || {
            match catch_unwind(AssertUnwindSafe(f)) {
                Ok(v) => {
                    *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(Ok(v));
                    None
                }
                Err(p) if p.is::<AbortToken>() => resume_unwind(p),
                Err(p) => {
                    // The real payload becomes the model failure; the
                    // slot gets a placeholder in case a join races in
                    // before the controller aborts.
                    *slot2.lock().unwrap_or_else(PoisonError::into_inner) =
                        Some(Err(Box::new("minloom: spawned thread panicked")
                            as Box<dyn std::any::Any + Send>));
                    Some(p)
                }
            }
        });
        Ok(JoinHandle { tid, slot })
    }
}

/// Model replacement for `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new()
        .spawn(f)
        .expect("minloom spawn is infallible")
}

/// A scheduling point, nothing more — the model has no time.
pub fn yield_now() {
    let (exec, tid) = current();
    exec.op_point(tid);
}

/// Sleeping is just a scheduling point: the model has no clock, so a
/// sleep is "any other thread may run arbitrarily long first" — which
/// the scheduler explores anyway.
pub fn sleep(_dur: std::time::Duration) {
    yield_now();
}
