//! Litmus tests for the checker itself: classic weak-memory shapes must
//! reach exactly the outcomes C11 allows, mutual exclusion must hold,
//! and buggy synchronization (a lost wakeup) must be *detected* — the
//! checker's teeth, before the model suite relies on them.

use minloom::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use minloom::sync::{Condvar, Mutex};
use minloom::thread;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex};

#[test]
fn fetch_add_is_atomic() {
    let iterations = minloom::model(|| {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let n = n.clone();
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::Relaxed), 3);
    });
    assert!(iterations > 1, "3 racing threads must yield many schedules");
}

/// Store buffering: with Relaxed everything, both loads may read the
/// initial values — the weak outcome (0,0) must be reachable.
#[test]
fn store_buffering_relaxed_reaches_weak_outcome() {
    let outcomes: Arc<StdMutex<HashSet<(u64, u64)>>> = Arc::new(StdMutex::new(HashSet::new()));
    let sink = outcomes.clone();
    minloom::model(move || {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (x.clone(), y.clone());
        let a = thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            y2.load(Ordering::Relaxed)
        });
        let (x3, y3) = (x.clone(), y.clone());
        let b = thread::spawn(move || {
            y3.store(1, Ordering::Relaxed);
            x3.load(Ordering::Relaxed)
        });
        let r1 = a.join().unwrap();
        let r2 = b.join().unwrap();
        sink.lock().unwrap().insert((r1, r2));
    });
    let seen = outcomes.lock().unwrap();
    assert!(
        seen.contains(&(0, 0)),
        "weak outcome must be explored: {seen:?}"
    );
    assert!(seen.contains(&(1, 1)));
}

/// Store buffering with SeqCst: the weak outcome must be excluded.
#[test]
fn store_buffering_seqcst_excludes_weak_outcome() {
    let outcomes: Arc<StdMutex<HashSet<(u64, u64)>>> = Arc::new(StdMutex::new(HashSet::new()));
    let sink = outcomes.clone();
    minloom::model(move || {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (x.clone(), y.clone());
        let a = thread::spawn(move || {
            x2.store(1, Ordering::SeqCst);
            y2.load(Ordering::SeqCst)
        });
        let (x3, y3) = (x.clone(), y.clone());
        let b = thread::spawn(move || {
            y3.store(1, Ordering::SeqCst);
            x3.load(Ordering::SeqCst)
        });
        let r1 = a.join().unwrap();
        let r2 = b.join().unwrap();
        sink.lock().unwrap().insert((r1, r2));
    });
    let seen = outcomes.lock().unwrap();
    assert!(!seen.contains(&(0, 0)), "SeqCst forbids (0,0): {seen:?}");
    assert!(seen.len() >= 2, "interleavings must vary: {seen:?}");
}

/// Message passing: a Release store to the flag makes the earlier data
/// store visible to an Acquire load that saw the flag — always.
#[test]
fn message_passing_release_acquire_never_stale() {
    minloom::model(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (data.clone(), flag.clone());
        let writer = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(
                data.load(Ordering::Relaxed),
                42,
                "acquire of the flag must publish the data store"
            );
        }
        writer.join().unwrap();
    });
}

/// The same shape with a Relaxed flag must be able to read stale data —
/// proving the checker actually models the weakness the lint audits for.
#[test]
fn message_passing_relaxed_flag_reaches_stale_read() {
    let saw_stale = Arc::new(StdMutex::new(false));
    let sink = saw_stale.clone();
    minloom::model(move || {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (data.clone(), flag.clone());
        let writer = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 && data.load(Ordering::Relaxed) == 0 {
            *sink.lock().unwrap() = true;
        }
        writer.join().unwrap();
    });
    assert!(
        *saw_stale.lock().unwrap(),
        "a relaxed flag must permit a stale data read in some schedule"
    );
}

/// Mutex mutual exclusion: non-atomic increments under the lock never
/// lose an update, in any schedule.
#[test]
fn mutex_guards_nonatomic_state() {
    minloom::model(|| {
        let n = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = n.clone();
                thread::spawn(move || {
                    let mut g = n.lock().unwrap();
                    let v = *g;
                    *g = v + 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock().unwrap(), 2);
    });
}

/// A predicate-checked condvar wait completes in every schedule, even
/// when the notify lands before the waiter blocks.
#[test]
fn condvar_with_predicate_never_hangs() {
    minloom::model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let setter = thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock().unwrap() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock().unwrap();
        while !*done {
            done = cv.wait(done).unwrap();
        }
        drop(done);
        setter.join().unwrap();
    });
}

/// Teeth: an unconditional wait (no predicate) loses the wakeup in the
/// schedule where the notify runs first — the checker must report the
/// deadlock with a replay seed.
#[test]
fn condvar_lost_wakeup_is_detected_as_deadlock() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        minloom::model(|| {
            let pair = Arc::new((Mutex::new(()), Condvar::new()));
            let p2 = pair.clone();
            let notifier = thread::spawn(move || {
                p2.1.notify_one();
            });
            let g = pair.0.lock().unwrap();
            drop(pair.1.wait(g).unwrap());
            notifier.join().unwrap();
        });
    }));
    let payload = result.expect_err("the lost-wakeup schedule must fail");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("deadlock"),
        "expected a deadlock report, got: {msg}"
    );
}

/// wait_timeout explores both futures: woken by the notify, and the
/// timeout firing first.
#[test]
fn wait_timeout_explores_both_outcomes() {
    let outcomes: Arc<StdMutex<HashSet<bool>>> = Arc::new(StdMutex::new(HashSet::new()));
    let sink = outcomes.clone();
    minloom::model(move || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let setter = thread::spawn(move || {
            *p2.0.lock().unwrap() = true;
            p2.1.notify_one();
        });
        let g = pair.0.lock().unwrap();
        let (g, timeout) = pair
            .1
            .wait_timeout(g, std::time::Duration::from_millis(1))
            .unwrap();
        drop(g);
        sink.lock().unwrap().insert(timeout.timed_out());
        setter.join().unwrap();
    });
    let seen = outcomes.lock().unwrap();
    assert!(
        seen.contains(&true) && seen.contains(&false),
        "both timeout outcomes must be explored: {seen:?}"
    );
}

/// Replaying an empty seed runs exactly the first (SC-like) schedule.
#[test]
fn replay_runs_a_single_schedule() {
    minloom::replay("", || {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = n.clone();
        let h = thread::spawn(move || {
            n2.fetch_add(1, Ordering::AcqRel);
        });
        h.join().unwrap();
        assert_eq!(n.load(Ordering::Acquire), 1);
    });
}

/// A preemption bound shrinks the schedule count but still finds the
/// weak outcome in the bounded space.
#[test]
fn preemption_bound_limits_exploration() {
    let unbounded = minloom::model(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let x = x.clone();
                thread::spawn(move || {
                    x.fetch_add(1, Ordering::Relaxed);
                    x.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(x.load(Ordering::Relaxed), 4);
    });
    let bounded = minloom::model_with(minloom::Config::with_preemption_bound(1), || {
        let x = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let x = x.clone();
                thread::spawn(move || {
                    x.fetch_add(1, Ordering::Relaxed);
                    x.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(x.load(Ordering::Relaxed), 4);
    });
    assert!(
        bounded < unbounded,
        "bound must prune schedules: bounded={bounded} unbounded={unbounded}"
    );
}

/// is_finished flips exactly once and join afterwards returns instantly.
#[test]
fn join_handle_is_finished() {
    minloom::model(|| {
        let h = thread::spawn(|| 7u32);
        // May be true or false here — but after join it must have run.
        let _ = h.is_finished();
        assert_eq!(h.join().unwrap(), 7);
    });
}
