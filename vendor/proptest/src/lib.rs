#![warn(missing_docs)]
//! Minimal offline stand-in for the crates.io `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`,
//! strategies for integer/float ranges, tuples and vectors,
//! [`collection::vec`], [`ProptestConfig`], and the [`proptest!`],
//! [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`] macros.
//!
//! Differences from the real crate, by design of a small stand-in:
//!
//! * **No shrinking.** A failing case panics with the ordinary assert
//!   message. Runs are fully deterministic (the RNG is seeded from the
//!   test's name), so a failure reproduces exactly under
//!   `cargo test <name>`.
//! * Fewer strategies; add impls here as tests need them.
//!
//! Replace this path dependency with the real crate when a registry is
//! reachable; no call sites need to change.

use rand::rngs::StdRng;
use rand::Rng;

pub use rand::SeedableRng as _SeedableForMacros;

/// The RNG handed to strategies by the [`proptest!`] runner.
pub type TestRng = StdRng;

/// How a single generated test case ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TestOutcome {
    /// The body ran to completion.
    Pass,
    /// A [`prop_assume!`] rejected the inputs; the case is not counted.
    Skip,
}

/// Runner configuration (`#![proptest_config(..)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of (non-skipped) cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// FNV-1a over a string — used to derive a per-test RNG seed from the test
/// function's name, so different tests explore different inputs while each
/// stays deterministic.
pub fn seed_of(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy it selects.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.random_range(self.start..self.end)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                if hi < <$t>::MAX {
                    rng.random_range(lo..hi + 1)
                } else {
                    rng.random::<u64>() as $t
                }
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.random::<f64>() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// A strategy that always yields clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy for vectors of `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test file conventionally glob-imports.
pub mod prelude {
    pub use crate::Just;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Rejects the current case without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return $crate::TestOutcome::Skip;
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng: $crate::TestRng =
                    $crate::_SeedableForMacros::seed_from_u64($crate::seed_of(stringify!($name)));
                let mut passed = 0u32;
                let mut attempts = 0u32;
                while passed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(20).max(100),
                        "too many prop_assume rejections in {}",
                        stringify!($name)
                    );
                    let outcome = {
                        $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                        let case = move || -> $crate::TestOutcome {
                            $body
                            $crate::TestOutcome::Pass
                        };
                        case()
                    };
                    if outcome == $crate::TestOutcome::Pass {
                        passed += 1;
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::{seed_of, Strategy, TestRng};

    fn rng() -> TestRng {
        crate::_SeedableForMacros::seed_from_u64(42)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..1_000 {
            let v = (3usize..17).generate(&mut r);
            assert!((3..17).contains(&v));
            let w = (1usize..=4).generate(&mut r);
            assert!((1..=4).contains(&w));
            let x = (0.5f64..2.5).generate(&mut r);
            assert!((0.5..2.5).contains(&x));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut r = rng();
        let s = (1usize..=8)
            .prop_flat_map(|n| crate::collection::vec(0u64..10, n))
            .prop_map(|v| v.len());
        for _ in 0..100 {
            let n = s.generate(&mut r);
            assert!((1..=8).contains(&n));
        }
    }

    #[test]
    fn vec_of_strategies_generates_elementwise() {
        let mut r = rng();
        let s: Vec<std::ops::Range<usize>> = (1..5).map(|i| 0..i).collect();
        let v = s.generate(&mut r);
        assert_eq!(v.len(), 4);
        for (k, &x) in v.iter().enumerate() {
            assert!(x < k + 1);
        }
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(seed_of("a"), seed_of("b"));
        assert_eq!(seed_of("a"), seed_of("a"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_runs_and_assumes(x in 0u32..100, y in 0u32..100) {
            prop_assume!(x != y);
            prop_assert!(x < 100 && y < 100);
            prop_assert_eq!(x + y, y + x);
        }
    }
}
