#![warn(missing_docs)]
//! Minimal offline stand-in for the crates.io `rand` crate (0.9 API).
//!
//! The build environment of this repository has no network access, so the
//! workspace vendors the *subset* of the `rand` 0.9 API it actually uses:
//! [`Rng::random`], [`Rng::random_range`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`]. The generator is xoshiro256** seeded through
//! SplitMix64 — a high-quality, well-studied construction — so the
//! statistical tests of the synthetic-tree generator remain meaningful.
//!
//! Replace this path dependency with the real crate when a registry is
//! reachable; no call sites need to change.

use std::ops::Range;

/// A source of random `u64`s.
pub trait RngCore {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from the full value domain
/// (`[0, 1)` for floats).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits, exactly the real crate's `Standard`.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types samplable from a half-open range.
pub trait UniformInt: Copy {
    /// Uniform draw from `[lo, hi)`; `hi > lo` required.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(hi > lo, "cannot sample from an empty range");
                let span = (hi as u128).wrapping_sub(lo as u128);
                // Debiased multiply-shift (Lemire); the zone rejection keeps
                // the draw exactly uniform.
                let zone = u64::MAX - (u64::MAX - span as u64 + 1) % span as u64;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return lo + (v % span as u64) as $t;
                    }
                }
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8);

/// The user-facing sampling interface (the `rand` 0.9 method names).
pub trait Rng: RngCore {
    /// A uniform sample over the type's full domain (`[0, 1)` for floats).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from a half-open range.
    fn random_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// A Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain algorithm).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn range_sampling_covers_and_stays_inside() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.random_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..10 should appear");
    }

    #[test]
    fn dyn_rng_usable_through_reference() {
        fn draw<R: super::RngCore + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(draw(&mut rng) < 1.0);
    }
}
