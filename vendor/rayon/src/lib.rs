#![warn(missing_docs)]
//! Minimal offline stand-in for the crates.io `rayon` crate.
//!
//! Implements the parallel-iterator subset this workspace uses —
//! `into_par_iter().map(..).collect::<Vec<_>>()` plus
//! [`current_num_threads`] — on top of `std::thread::scope` with an atomic
//! work index. Items are claimed one at a time (dynamic scheduling), so
//! unevenly sized scenario cells still balance across cores, and results
//! come back in input order exactly like real rayon's indexed collect.
//!
//! Replace this path dependency with the real crate when a registry is
//! reachable; no call sites need to change.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads a parallel iterator will use: the
/// `RAYON_NUM_THREADS` environment variable if set (like real rayon's
/// default pool), otherwise the available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The traits a `use rayon::prelude::*` is expected to bring in scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Runs two closures concurrently and returns both results (real rayon's
/// `join`). The stand-in spawns one scoped thread for `b` and runs `a` on
/// the caller — enough to overlap a sweep window's cell execution with the
/// generation of the next window.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join closure panicked"))
    })
}

/// Conversion into a parallel iterator (rayon's entry point).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Concrete iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;
    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

/// A parallel iterator: a source of `Send` items that can be mapped and
/// collected in parallel.
pub trait ParallelIterator: Sized + Send {
    /// Element type.
    type Item: Send;

    /// Materialises the items, running any pending stages in parallel,
    /// preserving input order.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps each item through `f` (executed in parallel at collect time).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Send + Sync,
    {
        Map { inner: self, f }
    }

    /// Collects the items, preserving input order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.drive().into_iter().collect()
    }
}

/// Parallel iterator over an owned `Vec`.
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;
    fn drive(self) -> Vec<T> {
        self.items
    }
}

/// A mapped parallel iterator (the result of [`ParallelIterator::map`]).
pub struct Map<I, F> {
    inner: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Send + Sync,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        let items = self.inner.drive();
        parallel_map(items, &self.f)
    }
}

/// Order-preserving parallel map with dynamic (one-item-at-a-time) load
/// balancing.
fn parallel_map<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: &F) -> Vec<R> {
    let n = items.len();
    let workers = current_num_threads().min(n.max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // ordering: Relaxed — allocates a unique index only; the
                // item itself is handed over by the slot mutex.
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= n {
                    break;
                }
                let item = slots[k]
                    .lock()
                    .expect("input slot poisoned")
                    .take()
                    .expect("each slot is claimed exactly once");
                let out = f(item);
                *results[k].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every slot was filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1_000).collect();
        let out: Vec<usize> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chained_maps_compose() {
        let v: Vec<u64> = (0..100).collect();
        let out: Vec<String> = v
            .into_par_iter()
            .map(|x| x + 1)
            .map(|x| x.to_string())
            .collect();
        assert_eq!(out[0], "1");
        assert_eq!(out[99], "100");
    }

    #[test]
    fn work_actually_spreads_over_threads() {
        if super::current_num_threads() < 2 {
            return; // single-core environment: nothing to assert
        }
        let v: Vec<usize> = (0..256).collect();
        let ids: Vec<std::thread::ThreadId> = v
            .into_par_iter()
            .map(|_| {
                // Enough work that one thread cannot drain the queue alone.
                std::thread::sleep(std::time::Duration::from_millis(1));
                std::thread::current().id()
            })
            .collect();
        let distinct: std::collections::HashSet<_> = ids.into_iter().collect();
        assert!(distinct.len() > 1, "expected multiple worker threads");
    }

    #[test]
    fn join_runs_both_and_propagates_results() {
        let (a, b) = super::join(|| 2 + 2, || "side".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "side");
    }

    #[test]
    fn empty_input() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
